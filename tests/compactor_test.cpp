//===- compactor_test.cpp - incremental compaction units ------------------------//

#include "gc/Compactor.h"

#include "gc/Sweeper.h"
#include "gc/WorkerPool.h"
#include "mutator/ThreadRegistry.h"
#include "runtime/GcHeap.h"
#include "workloads/GraphChurn.h"
#include "workpackets/PacketPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <utility>
#include <vector>

using namespace cgc;

namespace {

/// Fabricates a live (marked + allocated) object at \p Offset.
Object *plantLiveAt(HeapSpace &Heap, size_t Offset, uint16_t NumRefs,
                    uint16_t ClassId) {
  Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
  Obj->initialize(static_cast<uint32_t>(Object::requiredSize(16, NumRefs)),
                  NumRefs, ClassId);
  Heap.allocBits().set(Obj);
  Heap.markBits().set(Obj);
  return Obj;
}

/// The free list must never hold overlapping ranges (a double insert —
/// e.g. the sweeper and the compactor both returning the same run —
/// shows up here).
void expectRangesDisjoint(HeapSpace &Heap) {
  auto Ranges = Heap.freeList().snapshotRanges();
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    EXPECT_GE(Ranges[I].first, Ranges[I - 1].first + Ranges[I - 1].second)
        << "overlapping free ranges (double insert)";
}

/// Unit-level fixture: drives the compactor directly against a
/// hand-built heap state (the integration tests cover the collector
/// wiring). Single free-list shard, so range layouts — and therefore
/// fragmentation statistics — are fully deterministic.
class CompactorTest : public ::testing::Test {
protected:
  static constexpr size_t AreaBytes = 1u << 20;
  CompactorTest()
      : Heap(4u << 20), Compact(Heap, AreaBytes), Ctx(Pool) {
    Registry.attach(&Ctx);
    Ctx.reserveRoots(8);
    Heap.freeList().clear();
    // Free space outside the (first) area for evacuation targets.
    Heap.freeList().addRange(Heap.base() + AreaBytes, 3u << 20);
  }
  ~CompactorTest() override { Registry.detach(&Ctx); }

  Object *plantLive(size_t Offset, uint16_t NumRefs, uint16_t ClassId) {
    return plantLiveAt(Heap, Offset, NumRefs, ClassId);
  }

  /// Mechanics tests pin the area to [base, base + AreaBytes)
  /// deterministically; the policy tests exercise armForCycle itself.
  void armFirstArea() {
    Compact.armAreaForTest(Heap.base(), Heap.base() + AreaBytes);
  }

  HeapSpace Heap;
  Compactor Compact;
  PacketPool Pool{8};
  ThreadRegistry Registry;
  MutatorContext Ctx;
};

TEST_F(CompactorTest, DisarmedRecordsNothing) {
  EXPECT_FALSE(Compact.armed());
  EXPECT_FALSE(Compact.inEvacArea(Heap.base()));
}

//===----------------------------------------------------------------------===//
// Area-selection policy (through armForCycle, against a real free list)
//===----------------------------------------------------------------------===//

TEST_F(CompactorTest, StatsWithinClipsRangesToWindow) {
  Heap.freeList().clear();
  // One range straddling the area-0/area-1 boundary, one small range
  // inside area 0.
  Heap.freeList().addRange(Heap.base() + 512 * 1024, 1024 * 1024);
  Heap.freeList().addRange(Heap.base() + 64 * 1024, 4096);

  FreeRangeStats A0 =
      Heap.freeList().statsWithin(Heap.base(), Heap.base() + AreaBytes);
  EXPECT_EQ(A0.FreeBytes, 512u * 1024 + 4096);
  EXPECT_EQ(A0.RangeCount, 2u);
  EXPECT_EQ(A0.LargestRange, 512u * 1024);

  FreeRangeStats A1 = Heap.freeList().statsWithin(Heap.base() + AreaBytes,
                                                  Heap.base() + 2 * AreaBytes);
  EXPECT_EQ(A1.FreeBytes, 512u * 1024);
  EXPECT_EQ(A1.RangeCount, 1u);
  EXPECT_EQ(A1.LargestRange, 512u * 1024);

  FreeRangeStats A2 = Heap.freeList().statsWithin(
      Heap.base() + 2 * AreaBytes, Heap.base() + 3 * AreaBytes);
  EXPECT_EQ(A2.FreeBytes, 0u);
  EXPECT_EQ(A2.RangeCount, 0u);
}

TEST_F(CompactorTest, ArmSelectsMostFragmentedArea) {
  Heap.freeList().clear();
  // Areas 1 and 3: fully free, one contiguous range each — nothing to
  // recover by evacuating them.
  Heap.freeList().addRange(Heap.base() + AreaBytes, AreaBytes);
  Heap.freeList().addRange(Heap.base() + 3 * AreaBytes, AreaBytes);
  // Area 2: mostly live, its free space shredded into small ranges.
  for (size_t I = 0; I < 8; ++I)
    Heap.freeList().addRange(
        Heap.base() + 2 * AreaBytes + 64 * 1024 + I * 128 * 1024, 16 * 1024);

  Compact.armForCycle();
  auto [Lo, Hi] = Compact.area();
  EXPECT_EQ(Lo, Heap.base() + 2 * AreaBytes);
  EXPECT_EQ(Hi, Heap.base() + 3 * AreaBytes);
  EXPECT_TRUE(Compact.inEvacArea(Lo));
  EXPECT_FALSE(Compact.inEvacArea(Hi));
  Compact.disarm();
}

TEST_F(CompactorTest, ArmFallsBackToRotationOnEmptyFreeList) {
  // An empty free list (a lazy-sweep generation just armed) has nothing
  // to score: the selector degrades to the blind rotation.
  Heap.freeList().clear();
  Compact.armForCycle();
  auto [Lo1, Hi1] = Compact.area();
  EXPECT_EQ(Lo1, Heap.base());
  EXPECT_EQ(Hi1, Heap.base() + AreaBytes);
  Compact.disarm();
  Compact.armForCycle();
  auto [Lo2, Hi2] = Compact.area();
  EXPECT_EQ(Lo2, Heap.base() + AreaBytes);
  EXPECT_EQ(Hi2, Heap.base() + 2 * AreaBytes);
  Compact.disarm();
}

TEST_F(CompactorTest, PinnedHeavyAreaNotReselected) {
  Heap.freeList().clear();
  // Area 0 is by far the most fragmented...
  for (size_t I = 0; I < 8; ++I)
    Heap.freeList().addRange(Heap.base() + 64 * 1024 + I * 128 * 1024,
                             16 * 1024);
  // ...and area 1 holds contiguous target space.
  Heap.freeList().addRange(Heap.base() + AreaBytes, AreaBytes);
  // Conservative stack roots pin PinnedHeavyThreshold area-0 objects.
  for (unsigned I = 0; I < Compactor::PinnedHeavyThreshold; ++I) {
    Object *Obj = plantLive(I * 256, 0, static_cast<uint16_t>(I + 1));
    Ctx.setRoot(I, Obj);
  }

  Compact.armForCycle();
  EXPECT_EQ(Compact.area().first, Heap.base());
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.PinnedObjects, Compactor::PinnedHeavyThreshold);

  // The pins persist across cycles (they are conservative stack roots);
  // immediately re-evacuating around them would waste the pause, so the
  // selector must cool area 0 down even though it still scores highest.
  Compact.armForCycle();
  EXPECT_NE(Compact.area().first, Heap.base());
  Compact.disarm();
}

//===----------------------------------------------------------------------===//
// Evacuation mechanics (deterministic area via armAreaForTest)
//===----------------------------------------------------------------------===//

TEST_F(CompactorTest, EvacuatesAndFixesReferences) {
  // Holder outside the area points at a target inside it.
  Object *Target = plantLive(0, 1, 7);
  std::memset(Target->payload(), 0x5A, Target->payloadBytes());
  Object *Holder = plantLive(2u << 20, 2, 1);
  Holder->storeRefRaw(0, Target);
  Ctx.setRoot(0, Holder);

  armFirstArea();
  ASSERT_TRUE(Compact.inEvacArea(Target));
  Compact.recordSlot(Holder, 0); // What the tracer would have done.

  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 1u);
  EXPECT_EQ(S.SlotsFixed, 1u);
  EXPECT_EQ(S.PinnedObjects, 0u);
  EXPECT_FALSE(Compact.armed());

  Object *Moved = Holder->loadRef(0);
  ASSERT_NE(Moved, Target) << "reference not fixed up";
  EXPECT_GE(reinterpret_cast<uint8_t *>(Moved), Heap.base() + AreaBytes);
  EXPECT_EQ(Moved->classId(), 7u);
  EXPECT_EQ(Moved->payload()[0], 0x5A);
  EXPECT_TRUE(Heap.allocBits().test(Moved));
  EXPECT_TRUE(Heap.markBits().test(Moved));
  // The old location is dead.
  EXPECT_FALSE(Heap.allocBits().test(Target));
  EXPECT_FALSE(Heap.markBits().test(Target));
}

TEST_F(CompactorTest, RootReferencedObjectsArePinned) {
  Object *Rooted = plantLive(64, 0, 3);
  Ctx.setRoot(0, Rooted);
  armFirstArea();
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.PinnedObjects, 1u);
  EXPECT_EQ(S.EvacuatedObjects, 0u);
  // Pinned object stays, bits intact.
  EXPECT_TRUE(Heap.allocBits().test(Rooted));
  EXPECT_TRUE(Heap.markBits().test(Rooted));
  EXPECT_EQ(Ctx.getRoot(0), Rooted);
}

TEST_F(CompactorTest, IntraAreaReferencesFixed) {
  // Two evacuees referencing each other.
  Object *A = plantLive(0, 1, 1);
  Object *B = plantLive(128, 1, 2);
  A->storeRefRaw(0, B);
  B->storeRefRaw(0, A);
  armFirstArea();
  Compact.recordSlot(A, 0);
  Compact.recordSlot(B, 0);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 2u);
  EXPECT_EQ(S.SlotsFixed, 2u);
  // Find the moved copies via the bitmap outside the area.
  Object *NewA = nullptr, *NewB = nullptr;
  Heap.markBits().forEachSetInRange(
      Heap.base() + AreaBytes, Heap.limit(), [&](uint8_t *G) {
        Object *Obj = reinterpret_cast<Object *>(G);
        if (Obj->classId() == 1)
          NewA = Obj;
        if (Obj->classId() == 2)
          NewB = Obj;
        return true;
      });
  ASSERT_NE(NewA, nullptr);
  ASSERT_NE(NewB, nullptr);
  EXPECT_EQ(NewA->loadRef(0), NewB);
  EXPECT_EQ(NewB->loadRef(0), NewA);
}

TEST_F(CompactorTest, DeadHoldersSkippedAtFixup) {
  Object *Target = plantLive(0, 0, 1);
  // A holder that died (allocated but unmarked).
  Object *DeadHolder =
      reinterpret_cast<Object *>(Heap.base() + (2u << 20) + 4096);
  DeadHolder->initialize(32, 1, 9);
  Heap.allocBits().set(DeadHolder);
  DeadHolder->storeRefRaw(0, Target);

  armFirstArea();
  Compact.recordSlot(DeadHolder, 0);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 1u);
  EXPECT_EQ(S.SlotsFixed, 0u);
  // The dead holder's slot is untouched (stale, but it is garbage).
  EXPECT_EQ(DeadHolder->loadRef(0), Target);
}

TEST_F(CompactorTest, RewrittenSlotsNotMisfixed) {
  Object *Target = plantLive(0, 0, 1);
  Object *Other = plantLive(2u << 20, 0, 2);
  Object *Holder = plantLive((2u << 20) + 4096, 1, 3);
  Holder->storeRefRaw(0, Target);
  armFirstArea();
  Compact.recordSlot(Holder, 0);
  // The mutator rewired the slot after the tracer recorded it.
  Holder->storeRefRaw(0, Other);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.SlotsFixed, 0u);
  EXPECT_EQ(Holder->loadRef(0), Other);
  static_cast<void>(S);
}

TEST_F(CompactorTest, AreaFreeSpaceRebuilt) {
  plantLive(0, 0, 1);                 // Evacuated.
  Object *Pinned = plantLive(512, 0, 2);
  Ctx.setRoot(0, Pinned);             // Pinned in place.
  size_t FreeBefore = Heap.freeBytes();
  armFirstArea();
  Compact.evacuate(Registry);
  // The area minus the pinned object is free again; the evacuated copy
  // consumed space outside. Net change: the moved object's bytes moved
  // from the area to outside — total free shrinks only by rounding.
  size_t FreeAfter = Heap.freeBytes();
  EXPECT_GE(FreeAfter + 1024, FreeBefore);
  // No free range overlaps the pinned object.
  for (auto [Start, Size] : Heap.freeList().snapshotRanges()) {
    bool Overlaps = Start < Pinned->end() &&
                    Start + Size > reinterpret_cast<uint8_t *>(Pinned);
    EXPECT_FALSE(Overlaps);
  }
}

TEST_F(CompactorTest, EvacuationFailsGracefullyWithoutSpace) {
  Heap.freeList().clear(); // No targets anywhere.
  Object *Obj = plantLive(0, 0, 1);
  armFirstArea();
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 0u);
  EXPECT_EQ(S.FailedObjects, 1u);
  // The object stays valid in place.
  EXPECT_TRUE(Heap.allocBits().test(Obj));
  EXPECT_TRUE(Heap.markBits().test(Obj));
}

//===----------------------------------------------------------------------===//
// Regression: straddler tails past the area boundary (free-list leak)
//===----------------------------------------------------------------------===//

TEST_F(CompactorTest, MovedStraddlerTailReturnedToFreeList) {
  // The last object in the area extends past Hi. It moves as a whole
  // (its header is inside), and its tail [Hi, old end) was live when
  // the outside sweep passed it — only the compactor can return it.
  Heap.freeList().clear();
  Heap.freeList().addRange(Heap.base() + 2 * AreaBytes, AreaBytes);
  Object *Straddler =
      reinterpret_cast<Object *>(Heap.base() + AreaBytes - 1024);
  Straddler->initialize(8192, 0, 5);
  Heap.allocBits().set(Straddler);
  Heap.markBits().set(Straddler);

  armFirstArea();
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 1u);

  uint8_t *Hi = Heap.base() + AreaBytes;
  uint8_t *TailEnd = Hi + (8192 - 1024);
  bool TailFree = false;
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    if (Start <= Hi && Start + Size >= TailEnd)
      TailFree = true;
  EXPECT_TRUE(TailFree) << "straddler tail leaked past the area boundary";
  expectRangesDisjoint(Heap);
}

TEST_F(CompactorTest, StraddlerTailDeferredToPendingLazySweep) {
  // Same leak scenario, but the chunk owning the tail has not been
  // lazily swept yet: that sweep will re-derive the tail from the
  // now-clear mark bit, so the compactor must NOT add it (a double
  // insert corrupts the free list).
  Sweeper Sweep(Heap);
  Object *Straddler =
      reinterpret_cast<Object *>(Heap.base() + 3 * AreaBytes - 1024);
  Straddler->initialize(8192, 0, 5);
  Heap.allocBits().set(Straddler);
  Heap.markBits().set(Straddler);

  Compact.armAreaForTest(Heap.base() + 2 * AreaBytes,
                         Heap.base() + 3 * AreaBytes);
  Sweep.setEvacuationExclusion(Heap.base() + 2 * AreaBytes,
                               Heap.base() + 3 * AreaBytes);
  Sweep.armLazySweep();
  // Sweep just enough for target space: chunk 0 only.
  Sweep.sweepUntilFree(64 * 1024);
  ASSERT_TRUE(Sweep.sweepPendingAt(Heap.base() + 3 * AreaBytes));

  Compactor::Stats S = Compact.evacuate(Registry, nullptr, &Sweep);
  EXPECT_EQ(S.EvacuatedObjects, 1u);

  // The tail is not on the free list yet — its chunk is unswept.
  uint8_t *Hi = Heap.base() + 3 * AreaBytes;
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    EXPECT_FALSE(Start < Hi + 7168 && Start + Size > Hi)
        << "tail added although its lazy chunk is pending";

  Sweep.finishLazySweep();
  // Now the lazy sweep derived it; exactly once.
  bool TailFree = false;
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    if (Start <= Hi && Start + Size >= Hi + 7168)
      TailFree = true;
  EXPECT_TRUE(TailFree);
  expectRangesDisjoint(Heap);
  // Everything except the moved copy is free: any double insert or leak
  // breaks this accounting.
  EXPECT_LE(Heap.freeBytes(), Heap.sizeBytes() - 8192);
  EXPECT_GE(Heap.freeBytes(), Heap.sizeBytes() - 2 * 8192);
}

//===----------------------------------------------------------------------===//
// Regression: lazy sweep re-inserting ranges from the armed area
//===----------------------------------------------------------------------===//

TEST_F(CompactorTest, LazySweepKeepsArmedAreaOffFreeList) {
  // Orchestrated exactly like the collector's pause: arm, latch the
  // exclusion window, arm the lazy sweep, sweep a little for target
  // space, evacuate, finish the sweep. Without the exclusion window the
  // lazy sweep of chunk 0 would put armed-area ranges back on the free
  // list, and evacuation could then pick an in-area "target".
  Sweeper Sweep(Heap);
  Object *Mover = plantLive(64, 0, 9);

  armFirstArea();
  Sweep.setEvacuationExclusion(Heap.base(), Heap.base() + AreaBytes);
  Sweep.armLazySweep(); // Clears the free list for the new generation.
  Sweep.sweepUntilFree(AreaBytes);

  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    EXPECT_FALSE(Start < Heap.base() + AreaBytes &&
                 Start + Size > Heap.base())
        << "lazy sweep re-inserted ranges from the armed area";

  Compactor::Stats S = Compact.evacuate(Registry, nullptr, &Sweep);
  EXPECT_EQ(S.EvacuatedObjects, 1u);
  EXPECT_EQ(S.FailedObjects, 0u);
  EXPECT_FALSE(Heap.markBits().test(Mover)); // Old location dead.

  Sweep.finishLazySweep();
  expectRangesDisjoint(Heap);
  // Whole heap free except the one moved copy (24 bytes, modulo the
  // free list's minimum tracked range).
  EXPECT_LE(Heap.freeBytes(), Heap.sizeBytes() - 24);
  EXPECT_GE(Heap.freeBytes(), Heap.sizeBytes() - 4096);
  // The moved copy itself is never covered by a free range.
  Object *Moved = nullptr;
  Heap.markBits().forEachSetInRange(Heap.base() + AreaBytes, Heap.limit(),
                                    [&](uint8_t *G) {
                                      Moved = reinterpret_cast<Object *>(G);
                                      return false;
                                    });
  ASSERT_NE(Moved, nullptr);
  for (auto [Start, Size] : Heap.freeList().snapshotRanges())
    EXPECT_FALSE(Start < Moved->end() &&
                 Start + Size > reinterpret_cast<uint8_t *>(Moved))
        << "free range overlaps the evacuated copy";
}

//===----------------------------------------------------------------------===//
// Fault injection: target allocation failure degrades to failed moves
//===----------------------------------------------------------------------===//

TEST(CompactorFaults, TargetAllocFailureIsGracefulFailedMove) {
  HeapSpace Heap(4u << 20);
  FaultPlan Plan;
  Plan.failEveryNth(FaultSite::CompactorTargetAlloc, 1);
  FaultInjector FI(Plan);
  Compactor Compact(Heap, 1u << 20, &FI);
  PacketPool Pool{8};
  ThreadRegistry Registry;
  MutatorContext Ctx(Pool);
  Registry.attach(&Ctx);
  Heap.freeList().clear();
  Heap.freeList().addRange(Heap.base() + (1u << 20), 3u << 20);

  std::vector<Object *> Planted;
  for (size_t I = 0; I < 3; ++I)
    Planted.push_back(
        plantLiveAt(Heap, I * 4096, 0, static_cast<uint16_t>(I + 1)));

  Compact.armAreaForTest(Heap.base(), Heap.base() + (1u << 20));
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 0u);
  EXPECT_EQ(S.FailedObjects, 3u);
  EXPECT_EQ(FI.injected(FaultSite::CompactorTargetAlloc), 3u);
  // Every object stays valid in place.
  for (Object *Obj : Planted) {
    EXPECT_TRUE(Heap.allocBits().test(Obj));
    EXPECT_TRUE(Heap.markBits().test(Obj));
  }
  Registry.detach(&Ctx);
}

//===----------------------------------------------------------------------===//
// Lockstep: serial and parallel evacuation produce the same heap state
//===----------------------------------------------------------------------===//

struct LockstepOutcome {
  Compactor::Stats S;
  size_t FreeBytes = 0;
  /// Per-holder view of the post-compaction graph: (classId, payload
  /// byte, still-in-area) of the object each holder slot points at.
  /// Addresses differ across worker counts; the graph must not.
  std::vector<std::tuple<uint16_t, uint8_t, bool>> Reachable;
};

LockstepOutcome runLockstepEvacuation(unsigned NumWorkers) {
  constexpr size_t AreaBytes = 1u << 20;
  constexpr unsigned N = 48;
  HeapSpace Heap(4u << 20);
  Compactor Compact(Heap, AreaBytes);
  PacketPool Pool{8};
  ThreadRegistry Registry;
  MutatorContext Ctx(Pool);
  Registry.attach(&Ctx);
  Ctx.reserveRoots(8);
  Heap.freeList().clear();
  Heap.freeList().addRange(Heap.base() + AreaBytes, AreaBytes);

  // N movers in the area, one holder each outside (off the free list),
  // two conservative pins.
  std::vector<Object *> Holders;
  for (unsigned I = 0; I < N; ++I) {
    Object *M =
        plantLiveAt(Heap, I * 4096, 1, static_cast<uint16_t>(I));
    M->payload()[0] = static_cast<uint8_t>(I * 3 + 1);
    Object *H = plantLiveAt(Heap, (2u << 20) + I * 4096, 1, 1000);
    H->storeRefRaw(0, M);
    Holders.push_back(H);
  }
  Ctx.setRoot(0, reinterpret_cast<Object *>(Heap.base() + 5 * 4096));
  Ctx.setRoot(1, reinterpret_cast<Object *>(Heap.base() + 11 * 4096));

  Compact.armAreaForTest(Heap.base(), Heap.base() + AreaBytes);
  for (Object *H : Holders)
    Compact.recordSlot(H, 0);

  WorkerPool Workers(NumWorkers);
  LockstepOutcome Out;
  Out.S = Compact.evacuate(Registry, &Workers);
  Out.FreeBytes = Heap.freeBytes();
  for (unsigned I = 0; I < N; ++I) {
    Object *V = Holders[I]->loadRef(0);
    bool InArea = reinterpret_cast<uint8_t *>(V) < Heap.base() + AreaBytes;
    Out.Reachable.emplace_back(V->classId(), V->payload()[0], InArea);
    EXPECT_TRUE(Heap.allocBits().test(V));
    EXPECT_TRUE(Heap.markBits().test(V));
  }
  expectRangesDisjoint(Heap);
  Registry.detach(&Ctx);
  return Out;
}

TEST(CompactorLockstep, SerialAndParallelEvacuationAgree) {
  LockstepOutcome Serial = runLockstepEvacuation(0);
  // Spot-check the serial baseline is what the layout implies.
  EXPECT_EQ(Serial.S.PinnedObjects, 2u);
  EXPECT_EQ(Serial.S.EvacuatedObjects, 46u);
  EXPECT_EQ(Serial.S.FailedObjects, 0u);
  EXPECT_EQ(Serial.S.SlotRecords, 48u);
  EXPECT_EQ(Serial.S.SlotsFixed, 46u);

  for (unsigned Workers : {1u, 3u}) {
    LockstepOutcome Par = runLockstepEvacuation(Workers);
    EXPECT_EQ(Par.S.EvacuatedObjects, Serial.S.EvacuatedObjects);
    EXPECT_EQ(Par.S.EvacuatedBytes, Serial.S.EvacuatedBytes);
    EXPECT_EQ(Par.S.PinnedObjects, Serial.S.PinnedObjects);
    EXPECT_EQ(Par.S.FailedObjects, Serial.S.FailedObjects);
    EXPECT_EQ(Par.S.SlotsFixed, Serial.S.SlotsFixed);
    EXPECT_EQ(Par.FreeBytes, Serial.FreeBytes);
    EXPECT_EQ(Par.Reachable, Serial.Reachable)
        << "post-compaction object graph differs with " << Workers
        << " workers";
  }
}

//===----------------------------------------------------------------------===//
// End-to-end: the full collector with compaction enabled
//===----------------------------------------------------------------------===//

class CompactionEndToEnd : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(CompactionEndToEnd, GraphChurnSoundUnderCompaction) {
  GcOptions Opts;
  Opts.Kind = GetParam();
  Opts.HeapBytes = 12u << 20;
  Opts.CompactEveryNCycles = 2;
  Opts.EvacuationAreaBytes = 1u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  Opts.VerifyEachCycle = true;
  auto Heap = GcHeap::create(Opts);

  GraphChurnConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 1200;
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure)
      << "compaction corrupted a live object or reference";

  auto EvacuatedSoFar = [&] {
    uint64_t Evacuated = 0;
    for (const CycleRecord &R : Heap->stats().snapshot())
      Evacuated += R.EvacuatedObjects;
    return Evacuated;
  };
  // Under sanitizers the timed churn may complete too few cycles for
  // compaction to fire; top up with explicit fragmenting cycles.
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);
  for (int Attempt = 0; Attempt < 10 && EvacuatedSoFar() == 0; ++Attempt) {
    // Movers survive only through holder refs (conservative roots pin
    // the holders, not the movers), and the dropped 2/3 leave holes, so
    // the armed area always holds evacuatable objects.
    for (size_t I = 0; I < 256; ++I) {
      Object *Mover = Heap->allocate(Ctx, 512, 0);
      ASSERT_NE(Mover, nullptr);
      if (I % 3 != 0)
        continue;
      Object *Holder = Heap->allocate(Ctx, 64, 1);
      ASSERT_NE(Holder, nullptr);
      Heap->writeRef(Ctx, Holder, 0, Mover);
      Ctx.setRoot((I / 3) % 64, Holder);
    }
    Heap->requestGC(&Ctx);
  }
  Heap->detachThread(Ctx);

  uint64_t Evacuated = 0, Cycles = 0;
  for (const CycleRecord &R : Heap->stats().snapshot()) {
    Evacuated += R.EvacuatedObjects;
    ++Cycles;
  }
  EXPECT_GE(Cycles, 2u);
  EXPECT_GT(Evacuated, 0u) << "compaction never evacuated anything";
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, CompactionEndToEnd,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

/// Regression: compaction used to be silently disabled whenever
/// LazySweep was on (the free list was empty at arm time and evacuation
/// raced the lazy sweeper for it). The composed configuration must both
/// evacuate and stay sound.
class LazyCompactionEndToEnd : public ::testing::TestWithParam<CollectorKind> {
};

TEST_P(LazyCompactionEndToEnd, GraphChurnSoundUnderLazyCompaction) {
  GcOptions Opts;
  Opts.Kind = GetParam();
  Opts.HeapBytes = 12u << 20;
  Opts.LazySweep = true;
  Opts.CompactEveryNCycles = 1;
  Opts.EvacuationAreaBytes = 1u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  Opts.VerifyEachCycle = true;
  auto Heap = GcHeap::create(Opts);

  GraphChurnConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 1200;
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure)
      << "lazy sweep + compaction corrupted a live object or reference";

  auto EvacuatedSoFar = [&] {
    uint64_t Evacuated = 0;
    for (const CycleRecord &R : Heap->stats().snapshot())
      Evacuated += R.EvacuatedObjects;
    return Evacuated;
  };
  // Same sanitizer allowance as above: make sure compaction actually
  // got a chance to run before asserting it evacuated.
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);
  for (int Attempt = 0; Attempt < 10 && EvacuatedSoFar() == 0; ++Attempt) {
    // Movers survive only through holder refs (conservative roots pin
    // the holders, not the movers), and the dropped 2/3 leave holes, so
    // the armed area always holds evacuatable objects.
    for (size_t I = 0; I < 256; ++I) {
      Object *Mover = Heap->allocate(Ctx, 512, 0);
      ASSERT_NE(Mover, nullptr);
      if (I % 3 != 0)
        continue;
      Object *Holder = Heap->allocate(Ctx, 64, 1);
      ASSERT_NE(Holder, nullptr);
      Heap->writeRef(Ctx, Holder, 0, Mover);
      Ctx.setRoot((I / 3) % 64, Holder);
    }
    Heap->requestGC(&Ctx);
  }
  Heap->detachThread(Ctx);

  uint64_t Evacuated = EvacuatedSoFar();
  EXPECT_GT(Evacuated, 0u)
      << "compaction still disabled under lazy sweep";
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, LazyCompactionEndToEnd,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

} // namespace
