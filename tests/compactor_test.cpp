//===- compactor_test.cpp - incremental compaction units ------------------------//

#include "gc/Compactor.h"

#include "mutator/ThreadRegistry.h"
#include "runtime/GcHeap.h"
#include "workloads/GraphChurn.h"
#include "workpackets/PacketPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace cgc;

namespace {

/// Unit-level fixture: drives the compactor directly against a
/// hand-built heap state (the integration tests cover the collector
/// wiring).
class CompactorTest : public ::testing::Test {
protected:
  static constexpr size_t AreaBytes = 1u << 20;
  CompactorTest()
      : Heap(4u << 20), Compact(Heap, AreaBytes), Ctx(Pool) {
    Registry.attach(&Ctx);
    Ctx.reserveRoots(8);
    Heap.freeList().clear();
    // Free space outside the (first) area for evacuation targets.
    Heap.freeList().addRange(Heap.base() + AreaBytes, 3u << 20);
  }
  ~CompactorTest() override { Registry.detach(&Ctx); }

  /// Fabricates a live (marked + allocated) object.
  Object *plantLive(size_t Offset, uint16_t NumRefs, uint16_t ClassId) {
    Object *Obj = reinterpret_cast<Object *>(Heap.base() + Offset);
    Obj->initialize(
        static_cast<uint32_t>(Object::requiredSize(16, NumRefs)), NumRefs,
        ClassId);
    Heap.allocBits().set(Obj);
    Heap.markBits().set(Obj);
    return Obj;
  }

  HeapSpace Heap;
  Compactor Compact;
  PacketPool Pool{8};
  ThreadRegistry Registry;
  MutatorContext Ctx;
};

TEST_F(CompactorTest, DisarmedRecordsNothing) {
  EXPECT_FALSE(Compact.armed());
  EXPECT_FALSE(Compact.inEvacArea(Heap.base()));
}

TEST_F(CompactorTest, ArmSelectsRotatingAreas) {
  Compact.armForCycle();
  auto [Lo1, Hi1] = Compact.area();
  EXPECT_EQ(Lo1, Heap.base());
  EXPECT_EQ(Hi1, Heap.base() + AreaBytes);
  EXPECT_TRUE(Compact.inEvacArea(Heap.base()));
  EXPECT_FALSE(Compact.inEvacArea(Heap.base() + AreaBytes));
  Compact.disarm();
  Compact.armForCycle();
  auto [Lo2, Hi2] = Compact.area();
  EXPECT_EQ(Lo2, Heap.base() + AreaBytes);
  EXPECT_EQ(Hi2, Heap.base() + 2 * AreaBytes);
  Compact.disarm();
}

TEST_F(CompactorTest, EvacuatesAndFixesReferences) {
  // Holder outside the area points at a target inside it.
  Object *Target = plantLive(0, 1, 7);
  std::memset(Target->payload(), 0x5A, Target->payloadBytes());
  Object *Holder = plantLive(2u << 20, 2, 1);
  Holder->storeRefRaw(0, Target);
  Ctx.setRoot(0, Holder);

  Compact.armForCycle();
  ASSERT_TRUE(Compact.inEvacArea(Target));
  Compact.recordSlot(Holder, 0); // What the tracer would have done.

  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 1u);
  EXPECT_EQ(S.SlotsFixed, 1u);
  EXPECT_EQ(S.PinnedObjects, 0u);
  EXPECT_FALSE(Compact.armed());

  Object *Moved = Holder->loadRef(0);
  ASSERT_NE(Moved, Target) << "reference not fixed up";
  EXPECT_GE(reinterpret_cast<uint8_t *>(Moved), Heap.base() + AreaBytes);
  EXPECT_EQ(Moved->classId(), 7u);
  EXPECT_EQ(Moved->payload()[0], 0x5A);
  EXPECT_TRUE(Heap.allocBits().test(Moved));
  EXPECT_TRUE(Heap.markBits().test(Moved));
  // The old location is dead.
  EXPECT_FALSE(Heap.allocBits().test(Target));
  EXPECT_FALSE(Heap.markBits().test(Target));
}

TEST_F(CompactorTest, RootReferencedObjectsArePinned) {
  Object *Rooted = plantLive(64, 0, 3);
  Ctx.setRoot(0, Rooted);
  Compact.armForCycle();
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.PinnedObjects, 1u);
  EXPECT_EQ(S.EvacuatedObjects, 0u);
  // Pinned object stays, bits intact.
  EXPECT_TRUE(Heap.allocBits().test(Rooted));
  EXPECT_TRUE(Heap.markBits().test(Rooted));
  EXPECT_EQ(Ctx.getRoot(0), Rooted);
}

TEST_F(CompactorTest, IntraAreaReferencesFixed) {
  // Two evacuees referencing each other.
  Object *A = plantLive(0, 1, 1);
  Object *B = plantLive(128, 1, 2);
  A->storeRefRaw(0, B);
  B->storeRefRaw(0, A);
  Compact.armForCycle();
  Compact.recordSlot(A, 0);
  Compact.recordSlot(B, 0);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 2u);
  EXPECT_EQ(S.SlotsFixed, 2u);
  // Find the moved copies via the bitmap outside the area.
  Object *NewA = nullptr, *NewB = nullptr;
  Heap.markBits().forEachSetInRange(
      Heap.base() + AreaBytes, Heap.limit(), [&](uint8_t *G) {
        Object *Obj = reinterpret_cast<Object *>(G);
        if (Obj->classId() == 1)
          NewA = Obj;
        if (Obj->classId() == 2)
          NewB = Obj;
        return true;
      });
  ASSERT_NE(NewA, nullptr);
  ASSERT_NE(NewB, nullptr);
  EXPECT_EQ(NewA->loadRef(0), NewB);
  EXPECT_EQ(NewB->loadRef(0), NewA);
}

TEST_F(CompactorTest, DeadHoldersSkippedAtFixup) {
  Object *Target = plantLive(0, 0, 1);
  // A holder that died (allocated but unmarked).
  Object *DeadHolder =
      reinterpret_cast<Object *>(Heap.base() + (2u << 20) + 4096);
  DeadHolder->initialize(32, 1, 9);
  Heap.allocBits().set(DeadHolder);
  DeadHolder->storeRefRaw(0, Target);

  Compact.armForCycle();
  Compact.recordSlot(DeadHolder, 0);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 1u);
  EXPECT_EQ(S.SlotsFixed, 0u);
  // The dead holder's slot is untouched (stale, but it is garbage).
  EXPECT_EQ(DeadHolder->loadRef(0), Target);
}

TEST_F(CompactorTest, RewrittenSlotsNotMisfixed) {
  Object *Target = plantLive(0, 0, 1);
  Object *Other = plantLive(2u << 20, 0, 2);
  Object *Holder = plantLive((2u << 20) + 4096, 1, 3);
  Holder->storeRefRaw(0, Target);
  Compact.armForCycle();
  Compact.recordSlot(Holder, 0);
  // The mutator rewired the slot after the tracer recorded it.
  Holder->storeRefRaw(0, Other);
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.SlotsFixed, 0u);
  EXPECT_EQ(Holder->loadRef(0), Other);
  static_cast<void>(S);
}

TEST_F(CompactorTest, AreaFreeSpaceRebuilt) {
  plantLive(0, 0, 1);                 // Evacuated.
  Object *Pinned = plantLive(512, 0, 2);
  Ctx.setRoot(0, Pinned);             // Pinned in place.
  size_t FreeBefore = Heap.freeBytes();
  Compact.armForCycle();
  Compact.evacuate(Registry);
  // The area minus the pinned object is free again; the evacuated copy
  // consumed space outside. Net change: the moved object's bytes moved
  // from the area to outside — total free shrinks only by rounding.
  size_t FreeAfter = Heap.freeBytes();
  EXPECT_GE(FreeAfter + 1024, FreeBefore);
  // No free range overlaps the pinned object.
  for (auto [Start, Size] : Heap.freeList().snapshotRanges()) {
    bool Overlaps = Start < Pinned->end() &&
                    Start + Size > reinterpret_cast<uint8_t *>(Pinned);
    EXPECT_FALSE(Overlaps);
  }
}

TEST_F(CompactorTest, EvacuationFailsGracefullyWithoutSpace) {
  Heap.freeList().clear(); // No targets anywhere.
  Object *Obj = plantLive(0, 0, 1);
  Compact.armForCycle();
  Compactor::Stats S = Compact.evacuate(Registry);
  EXPECT_EQ(S.EvacuatedObjects, 0u);
  EXPECT_EQ(S.FailedObjects, 1u);
  // The object stays valid in place.
  EXPECT_TRUE(Heap.allocBits().test(Obj));
  EXPECT_TRUE(Heap.markBits().test(Obj));
}

/// End-to-end: the full collector with compaction enabled stays sound
/// under the self-verifying workload, and actually evacuates.
class CompactionEndToEnd : public ::testing::TestWithParam<CollectorKind> {};

TEST_P(CompactionEndToEnd, GraphChurnSoundUnderCompaction) {
  GcOptions Opts;
  Opts.Kind = GetParam();
  Opts.HeapBytes = 12u << 20;
  Opts.CompactEveryNCycles = 2;
  Opts.EvacuationAreaBytes = 1u << 20;
  Opts.BackgroundThreads = 1;
  Opts.GcWorkerThreads = 2;
  Opts.NumWorkPackets = 64;
  Opts.VerifyEachCycle = true;
  auto Heap = GcHeap::create(Opts);

  GraphChurnConfig Config;
  Config.Threads = 2;
  Config.DurationMs = 1200;
  GraphChurnWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();
  EXPECT_FALSE(Result.IntegrityFailure)
      << "compaction corrupted a live object or reference";

  uint64_t Evacuated = 0, Cycles = 0;
  for (const CycleRecord &R : Heap->stats().snapshot()) {
    Evacuated += R.EvacuatedObjects;
    ++Cycles;
  }
  EXPECT_GE(Cycles, 2u);
  EXPECT_GT(Evacuated, 0u) << "compaction never evacuated anything";
  VerifyResult V = Heap->verifyNow(nullptr);
  EXPECT_TRUE(V.Ok) << V.Error;
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, CompactionEndToEnd,
                         ::testing::Values(CollectorKind::StopTheWorld,
                                           CollectorKind::MostlyConcurrent),
                         [](const auto &Info) {
                           return Info.param == CollectorKind::StopTheWorld
                                      ? "Stw"
                                      : "Concurrent";
                         });

} // namespace
