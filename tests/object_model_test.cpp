//===- object_model_test.cpp - object layout units -----------------------------//

#include "heap/HeapSpace.h"
#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace cgc;

namespace {

TEST(ObjectModelTest, RequiredSizeRoundsUp) {
  // Header only, no payload, no refs: still the minimum object.
  EXPECT_EQ(Object::requiredSize(0, 0), Object::MinObjectBytes);
  // 8-byte header + 1 ref + 0 payload = 16.
  EXPECT_EQ(Object::requiredSize(0, 1), 16u);
  // Rounds payload to granules.
  EXPECT_EQ(Object::requiredSize(1, 0), 16u);
  EXPECT_EQ(Object::requiredSize(9, 0), 24u);
  EXPECT_EQ(Object::requiredSize(8, 2), 32u);
}

TEST(ObjectModelTest, InitializeZeroesRefs) {
  alignas(8) uint8_t Buf[64];
  std::memset(Buf, 0xAB, sizeof(Buf));
  Object *Obj = reinterpret_cast<Object *>(Buf);
  Obj->initialize(48, 3, 7);
  EXPECT_EQ(Obj->sizeBytes(), 48u);
  EXPECT_EQ(Obj->numRefs(), 3u);
  EXPECT_EQ(Obj->classId(), 7u);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(Obj->loadRef(I), nullptr);
  EXPECT_EQ(Obj->payloadBytes(), 48u - 8 - 24);
  EXPECT_EQ(Obj->payload(), Buf + 8 + 24);
  EXPECT_EQ(Obj->end(), Buf + 48);
  // Payload untouched by initialize.
  EXPECT_EQ(Obj->payload()[0], 0xAB);
}

TEST(ObjectModelTest, RefStoreLoadRoundTrip) {
  alignas(8) uint8_t BufA[32], BufB[32];
  Object *A = reinterpret_cast<Object *>(BufA);
  Object *B = reinterpret_cast<Object *>(BufB);
  A->initialize(32, 2, 0);
  B->initialize(16, 0, 0);
  A->storeRefRaw(0, B);
  EXPECT_EQ(A->loadRef(0), B);
  EXPECT_EQ(A->loadRef(1), nullptr);
  A->storeRefRaw(0, nullptr);
  EXPECT_EQ(A->loadRef(0), nullptr);
}

TEST(HeapSpaceTest, GeometryAndContains) {
  HeapSpace Heap(1u << 20);
  EXPECT_GE(Heap.sizeBytes(), 1u << 20);
  EXPECT_TRUE(Heap.contains(Heap.base()));
  EXPECT_TRUE(Heap.contains(Heap.limit() - 1));
  EXPECT_FALSE(Heap.contains(Heap.limit()));
  EXPECT_FALSE(Heap.contains(nullptr));
  // Whole heap starts free.
  EXPECT_EQ(Heap.freeBytes(), Heap.sizeBytes());
  EXPECT_EQ(Heap.occupiedBytes(), 0u);
}

TEST(HeapSpaceTest, PlausibleObjectFilter) {
  HeapSpace Heap(1u << 20);
  uint8_t *P = Heap.base() + 64;
  uintptr_t Word = reinterpret_cast<uintptr_t>(P);
  // In heap, aligned, but no allocation bit: rejected.
  EXPECT_FALSE(Heap.isPlausibleObject(Word));
  Heap.allocBits().set(P);
  EXPECT_TRUE(Heap.isPlausibleObject(Word));
  // Misaligned: rejected even with a bit nearby.
  EXPECT_FALSE(Heap.isPlausibleObject(Word + 4));
  // Outside the heap: rejected.
  EXPECT_FALSE(Heap.isPlausibleObject(
      reinterpret_cast<uintptr_t>(Heap.limit()) + 8));
  // Null and small integers: rejected.
  EXPECT_FALSE(Heap.isPlausibleObject(0));
  EXPECT_FALSE(Heap.isPlausibleObject(8));
}

TEST(HeapSpaceTest, ForEachMarkedObjectIntersection) {
  HeapSpace Heap(1u << 20);
  uint8_t *A = Heap.base();        // alloc + mark
  uint8_t *B = Heap.base() + 128;  // alloc only
  uint8_t *C = Heap.base() + 256;  // mark only (no alloc bit)
  Heap.allocBits().set(A);
  Heap.markBits().set(A);
  Heap.allocBits().set(B);
  Heap.markBits().set(C);
  int Count = 0;
  Heap.forEachMarkedObjectIn(Heap.base(), Heap.base() + 512,
                             [&](Object *Obj) {
                               EXPECT_EQ(reinterpret_cast<uint8_t *>(Obj), A);
                               ++Count;
                             });
  EXPECT_EQ(Count, 1);
}

} // namespace
