//===- sharded_freelist_test.cpp - sharded free-space manager units ------------//

#include "heap/ShardedFreeList.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>

using namespace cgc;

namespace {

class ShardedFreeListTest : public ::testing::Test {
protected:
  static constexpr size_t RegionBytes = 8u << 20;
  void SetUp() override {
    Mem.reset(static_cast<uint8_t *>(std::aligned_alloc(4096, RegionBytes)));
  }
  uint8_t *at(size_t Offset) { return Mem.get() + Offset; }
  struct FreeDeleter {
    void operator()(uint8_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> Mem;
};

/// Every snapshot range must lie entirely inside one shard.
void expectNoBoundaryCrossing(const ShardedFreeList &List) {
  for (auto [Start, Size] : List.snapshotRanges())
    EXPECT_EQ(List.shardIndexFor(Start), List.shardIndexFor(Start + Size - 1))
        << "free range crosses a shard boundary";
}

/// Snapshot ranges must be address-ordered and non-overlapping.
void expectDisjointOrdered(const ShardedFreeList &List) {
  auto Ranges = List.snapshotRanges();
  for (size_t I = 0; I + 1 < Ranges.size(); ++I)
    EXPECT_LE(Ranges[I].first + Ranges[I].second, Ranges[I + 1].first)
        << "overlapping free ranges";
}

TEST(ShardCountResolution, AutoPicksPowerOfTwoUpToEight) {
  unsigned Auto = ShardedFreeList::resolveShardCount(0, 64u << 20, 4096);
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, 8u);
  EXPECT_EQ(Auto & (Auto - 1), 0u) << "auto count must be a power of two";
}

TEST(ShardCountResolution, RoundsDownToPowerOfTwo) {
  EXPECT_EQ(ShardedFreeList::resolveShardCount(3, 64u << 20, 4096), 2u);
  EXPECT_EQ(ShardedFreeList::resolveShardCount(7, 64u << 20, 4096), 4u);
  EXPECT_EQ(ShardedFreeList::resolveShardCount(8, 64u << 20, 4096), 8u);
}

TEST(ShardCountResolution, ClampsToMinimumShardSpan) {
  // 1 MB heap with 32 KB caches: at most 32 shards could each span a
  // cache; requesting 64 must halve down.
  EXPECT_EQ(ShardedFreeList::resolveShardCount(64, 1u << 20, 32u << 10),
            32u);
  // Tiny heap: collapses to one shard rather than sub-page shards.
  EXPECT_EQ(ShardedFreeList::resolveShardCount(8, 8192, 4096), 2u);
}

TEST_F(ShardedFreeListTest, GeometryCoversTheRegion) {
  ShardedFreeList List(at(0), RegionBytes, 8);
  ASSERT_EQ(List.numShards(), 8u);
  EXPECT_EQ(List.shardSpanBytes(), RegionBytes / 8);
  EXPECT_EQ(List.shardIndexFor(at(0)), 0u);
  EXPECT_EQ(List.shardIndexFor(at(RegionBytes / 8)), 1u);
  EXPECT_EQ(List.shardIndexFor(at(RegionBytes - 1)), 7u);
}

TEST_F(ShardedFreeListTest, InsertSplitsAtShardBoundaries) {
  ShardedFreeList List(at(0), RegionBytes, 8);
  List.addRange(at(0), RegionBytes);
  EXPECT_EQ(List.freeBytes(), RegionBytes);
  // One maximal range per shard: boundaries split, interiors coalesce.
  EXPECT_EQ(List.numRanges(), 8u);
  expectNoBoundaryCrossing(List);
  for (unsigned I = 0; I < 8; ++I)
    EXPECT_EQ(List.shard(I).freeBytes(), RegionBytes / 8);
}

TEST_F(ShardedFreeListTest, StraddlingRangeLandsInBothOwners) {
  ShardedFreeList List(at(0), RegionBytes, 2);
  size_t Boundary = List.shardSpanBytes();
  List.addRange(at(Boundary - 8192), 16384);
  EXPECT_EQ(List.freeBytes(), 16384u);
  EXPECT_EQ(List.shard(0).freeBytes(), 8192u);
  EXPECT_EQ(List.shard(1).freeBytes(), 8192u);
  expectNoBoundaryCrossing(List);
}

TEST_F(ShardedFreeListTest, AllocatePrefersTheAffineShard) {
  ShardedFreeList List(at(0), RegionBytes, 4);
  size_t Span = List.shardSpanBytes();
  for (unsigned I = 0; I < 4; ++I)
    List.addRange(at(I * Span), 64 << 10);
  for (unsigned I = 0; I < 4; ++I) {
    uint8_t *P = List.allocate(4096, I);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(List.shardIndexFor(P), I) << "allocation ignored affinity";
  }
}

TEST_F(ShardedFreeListTest, ExhaustedShardStealsInRingOrder) {
  ShardedFreeList List(at(0), RegionBytes, 4);
  size_t Span = List.shardSpanBytes();
  // Only shards 1 and 3 hold memory; preferring shard 2 must steal from
  // 3 (the next in ring order), not 1.
  List.addRange(at(1 * Span), 64 << 10);
  List.addRange(at(3 * Span), 64 << 10);
  uint8_t *P = List.allocate(4096, 2);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(List.shardIndexFor(P), 3u);
  // Preferring shard 0 takes shard 1 first.
  uint8_t *Q = List.allocate(4096, 0);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(List.shardIndexFor(Q), 1u);
}

TEST_F(ShardedFreeListTest, RefillPrefersFullGrantOverAffinePartial) {
  ShardedFreeList List(at(0), RegionBytes, 2);
  size_t Span = List.shardSpanBytes();
  // Preferred shard 0 holds only a partial range; shard 1 a full span.
  List.addRange(at(0), 8192);
  List.addRange(at(Span), 64 << 10);
  size_t Granted = 0;
  uint8_t *P = List.allocateUpTo(4096, 32u << 10, Granted, 0);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Granted, 32u << 10);
  EXPECT_EQ(List.shardIndexFor(P), 1u)
      << "a full-size grant elsewhere must beat a partial affine grant";
  // With the full span gone, the partial grant from the affine shard.
  List.withdrawWithin(at(Span), at(2 * Span));
  uint8_t *Q = List.allocateUpTo(4096, 32u << 10, Granted, 0);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Granted, 8192u);
  EXPECT_EQ(List.shardIndexFor(Q), 0u);
}

TEST_F(ShardedFreeListTest, WithdrawWithinSpansShards) {
  ShardedFreeList List(at(0), RegionBytes, 4);
  size_t Span = List.shardSpanBytes();
  List.addRange(at(0), RegionBytes);
  // Window covering the tail of shard 0 through the head of shard 2.
  size_t Withdrawn = List.withdrawWithin(at(Span - 4096), at(2 * Span + 4096));
  EXPECT_EQ(Withdrawn, Span + 8192);
  EXPECT_EQ(List.freeBytes(), RegionBytes - Span - 8192);
  // Nothing inside the window remains allocatable.
  for (auto [Start, Size] : List.snapshotRanges())
    EXPECT_TRUE(Start + Size <= at(Span - 4096) ||
                Start >= at(2 * Span + 4096));
  expectNoBoundaryCrossing(List);
}

TEST_F(ShardedFreeListTest, SingleShardMatchesLegacyFreeListExactly) {
  // A/B contract: FreeListShards = 1 must reproduce the legacy
  // single-list results operation for operation.
  ShardedFreeList Sharded(at(0), RegionBytes, 1);
  FreeList Legacy;
  ASSERT_EQ(Sharded.numShards(), 1u);
  Random Rng(7);
  std::vector<std::pair<size_t, size_t>> Held; // (offset, size)
  Sharded.addRange(at(0), 1u << 20);
  Legacy.addRange(at(4u << 20), 1u << 20); // Disjoint half, same shape.
  auto legacyAt = [&](uint8_t *P) { return (P - at(0)) + (4u << 20); };
  for (int I = 0; I < 3000; ++I) {
    if (Rng.nextBool(0.5) || Held.empty()) {
      if (Rng.nextBool(0.3)) {
        size_t Min = 64 * (1 + Rng.nextBelow(16));
        size_t Max = Min + 64 * Rng.nextBelow(256);
        size_t GotS = 0, GotL = 0;
        uint8_t *S = Sharded.allocateUpTo(Min, Max, GotS, 0);
        uint8_t *L = Legacy.allocateUpTo(Min, Max, GotL);
        ASSERT_EQ(S == nullptr, L == nullptr);
        if (S) {
          ASSERT_EQ(GotS, GotL);
          ASSERT_EQ(legacyAt(S), static_cast<size_t>(L - at(0)));
          Held.emplace_back(S - at(0), GotS);
        }
      } else {
        size_t Want = 64 * (1 + Rng.nextBelow(128));
        uint8_t *S = Sharded.allocate(Want, 0);
        uint8_t *L = Legacy.allocate(Want);
        ASSERT_EQ(S == nullptr, L == nullptr);
        if (S) {
          ASSERT_EQ(legacyAt(S), static_cast<size_t>(L - at(0)));
          Held.emplace_back(S - at(0), Want);
        }
      }
    } else {
      size_t Pick = Rng.nextBelow(Held.size());
      auto [Off, Sz] = Held[Pick];
      Sharded.addRange(at(Off), Sz);
      Legacy.addRange(at((Off - 0) + (4u << 20)), Sz);
      Held.erase(Held.begin() + Pick);
    }
    ASSERT_EQ(Sharded.freeBytes(), Legacy.freeBytes());
    ASSERT_EQ(Sharded.numRanges(), Legacy.numRanges());
    ASSERT_EQ(Sharded.largestRange(), Legacy.largestRange());
  }
}

TEST_F(ShardedFreeListTest, PropertyRandomChurnConservesAndNeverCrosses) {
  // Satellite (a): random add/allocate/withdraw sequences conserve
  // bytes, never overlap, and never produce a boundary-crossing range.
  // Everything stays 64-byte aligned so no sliver is silently dropped
  // and conservation is exact.
  for (unsigned Shards : {2u, 4u, 8u}) {
    ShardedFreeList List(at(0), RegionBytes, Shards);
    ASSERT_EQ(List.numShards(), Shards);
    Random Rng(1234 + Shards);
    List.addRange(at(0), RegionBytes);
    size_t HeldBytes = 0, WithdrawnBytes = 0;
    std::vector<std::pair<uint8_t *, size_t>> Held;
    for (int I = 0; I < 4000; ++I) {
      double Dice = static_cast<double>(Rng.nextBelow(100)) / 100.0;
      if (Dice < 0.45 || Held.empty()) {
        size_t Want = 64 * (1 + Rng.nextBelow(200));
        size_t Got = 0;
        uint8_t *P = Rng.nextBool(0.5)
                         ? List.allocate(Want, Rng.nextBelow(Shards))
                         : List.allocateUpTo(64, Want, Got,
                                             Rng.nextBelow(Shards));
        if (P) {
          size_t Size = Got ? Got : Want;
          Held.emplace_back(P, Size);
          HeldBytes += Size;
        }
      } else if (Dice < 0.9) {
        size_t Pick = Rng.nextBelow(Held.size());
        List.addRange(Held[Pick].first, Held[Pick].second);
        HeldBytes -= Held[Pick].second;
        Held.erase(Held.begin() + Pick);
      } else if (WithdrawnBytes < RegionBytes / 8) {
        size_t Lo = 4096 * Rng.nextBelow(RegionBytes / 4096);
        size_t Len = 4096 * (1 + Rng.nextBelow(16));
        if (Lo + Len > RegionBytes)
          Len = RegionBytes - Lo;
        WithdrawnBytes += List.withdrawWithin(at(Lo), at(Lo + Len));
      }
      if (I % 200 == 0) {
        ASSERT_EQ(List.freeBytes() + HeldBytes + WithdrawnBytes,
                  RegionBytes)
            << "bytes not conserved at step " << I;
        expectDisjointOrdered(List);
        expectNoBoundaryCrossing(List);
      }
    }
    ASSERT_EQ(List.freeBytes() + HeldBytes + WithdrawnBytes, RegionBytes);
    expectDisjointOrdered(List);
    expectNoBoundaryCrossing(List);
  }
}

TEST_F(ShardedFreeListTest, HammerThreadsMatchSingleThreadedOracle) {
  // Satellite (b): N threads doing allocateUpTo/addRange concurrently;
  // afterwards the books must balance exactly against the one-number
  // oracle a single-threaded run would produce (initial = free + held),
  // with all held blocks and free ranges mutually disjoint.
  constexpr unsigned Shards = 4;
  constexpr int NumThreads = 8;
  ShardedFreeList List(at(0), RegionBytes, Shards);
  List.addRange(at(0), RegionBytes);
  std::vector<std::vector<std::pair<uint8_t *, size_t>>> Held(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Random Rng(99 + T);
      auto &Mine = Held[T];
      for (int I = 0; I < 4000; ++I) {
        if (Rng.nextBool(0.55) || Mine.empty()) {
          size_t Got = 0;
          if (uint8_t *P = List.allocateUpTo(64, 32u << 10, Got,
                                             T % Shards))
            Mine.emplace_back(P, Got);
        } else {
          auto [P, Size] = Mine.back();
          Mine.pop_back();
          List.addRange(P, Size);
        }
      }
    });
  for (auto &Th : Threads)
    Th.join();

  size_t HeldBytes = 0;
  std::vector<std::pair<uint8_t *, size_t>> All = List.snapshotRanges();
  for (auto &Mine : Held)
    for (auto [P, Size] : Mine) {
      HeldBytes += Size;
      All.emplace_back(P, Size);
    }
  EXPECT_EQ(List.freeBytes() + HeldBytes, RegionBytes)
      << "concurrent churn lost or duplicated bytes";
  std::sort(All.begin(), All.end());
  for (size_t I = 0; I + 1 < All.size(); ++I)
    ASSERT_LE(All[I].first + All[I].second, All[I + 1].first)
        << "held block or free range overlaps another";
  expectNoBoundaryCrossing(List);
}

//===----------------------------------------------------------------------===//
// Refillable-free accounting (pacer shard-stranding awareness)
//===----------------------------------------------------------------------===//

TEST_F(ShardedFreeListTest, RefillableCountsOnlyRangesAtOrAboveThreshold) {
  constexpr size_t Threshold = 8u << 10;
  ShardedFreeList List(at(0), RegionBytes, 4, nullptr, Threshold);
  // One range comfortably above the threshold, one exactly at it, one
  // below: only the first two are refill material.
  List.addRange(at(0), 32u << 10);
  List.addRange(at(64u << 10), Threshold);
  List.addRange(at(128u << 10), 4u << 10);
  EXPECT_EQ(List.freeBytes(), (32u << 10) + Threshold + (4u << 10));
  EXPECT_EQ(List.refillableFreeBytes(), (32u << 10) + Threshold);

  // Carving the large range down below the threshold must untrack it.
  uint8_t *P = List.allocate((32u << 10) - (4u << 10), 0);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(List.refillableFreeBytes(), Threshold)
      << "a remainder below the threshold still counted as refillable";
  EXPECT_EQ(List.freeBytes(), Threshold + (4u << 10) + (4u << 10));

  List.clear();
  EXPECT_EQ(List.refillableFreeBytes(), 0u);
}

TEST_F(ShardedFreeListTest, ThresholdZeroMeansRefillableEqualsFree) {
  // The default (threshold 0) preserves the old behaviour exactly:
  // every free byte counts as refillable, through arbitrary churn.
  ShardedFreeList List(at(0), RegionBytes, 4);
  List.addRange(at(0), RegionBytes);
  Random Rng(7);
  std::vector<std::pair<uint8_t *, size_t>> Held;
  for (int I = 0; I < 2000; ++I) {
    if (Rng.nextBool(0.6) || Held.empty()) {
      size_t Got = 0;
      if (uint8_t *P = List.allocateUpTo(64, 16u << 10, Got, I % 4))
        Held.emplace_back(P, Got);
    } else {
      auto [P, Size] = Held.back();
      Held.pop_back();
      List.addRange(P, Size);
    }
    ASSERT_EQ(List.refillableFreeBytes(), List.freeBytes())
        << "threshold 0 must keep refillable == free (step " << I << ")";
  }
}

TEST_F(ShardedFreeListTest, FragmentedShardsStrandFreeBytes) {
  // The pacer-stranding scenario: plenty of free bytes in aggregate,
  // but every range is smaller than an allocation-cache refill, so no
  // mutator can actually use them. refillableFreeBytes() must report
  // (near) zero while freeBytes() stays high -- this gap is what drives
  // the earlier collection kickoff.
  constexpr size_t Threshold = 8u << 10;
  ShardedFreeList List(at(0), RegionBytes, 4, nullptr, Threshold);
  constexpr size_t Fragment = 4u << 10;  // half the refill threshold
  constexpr size_t Stride = 16u << 10;   // gaps prevent coalescing
  constexpr size_t Reserved = 64u << 10; // kept for the large block below
  size_t Added = 0;
  for (size_t Off = 0; Off + Fragment <= RegionBytes - Reserved;
       Off += Stride) {
    List.addRange(at(Off), Fragment);
    Added += Fragment;
  }
  EXPECT_EQ(List.freeBytes(), Added);
  EXPECT_GT(List.freeBytes(), 1u << 20) << "scenario needs real volume";
  EXPECT_EQ(List.refillableFreeBytes(), 0u)
      << "sub-threshold fragments must not count as refillable";

  // Refillable never exceeds raw free, and returning a large block
  // makes it refill material again.
  List.addRange(at(RegionBytes - Reserved), Reserved);
  EXPECT_EQ(List.refillableFreeBytes(), Reserved);
  EXPECT_LE(List.refillableFreeBytes(), List.freeBytes());
}

} // namespace
