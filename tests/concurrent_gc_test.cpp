//===- concurrent_gc_test.cpp - mostly-concurrent collector --------------------//

#include "TestSeed.h"
#include "gc/ConcurrentCollector.h"
#include "runtime/GcHeap.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

GcOptions cgcOptions(size_t HeapMb = 8) {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = HeapMb << 20;
  Opts.GcWorkerThreads = 2;
  Opts.BackgroundThreads = 1;
  Opts.NumWorkPackets = 64;
  Opts.VerifyEachCycle = true;
  return Opts;
}

TEST(ConcurrentGcTest, BasicAllocateCollectSurvive) {
  auto Heap = GcHeap::create(cgcOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(8);
  Object *Keep = Heap->allocate(Ctx, 128, 2, 9);
  ASSERT_NE(Keep, nullptr);
  Keep->payload()[5] = 0x77;
  Ctx.setRoot(0, Keep);
  // Churn enough garbage to force multiple full cycles.
  size_t Total = 0;
  while (Total < 48u << 20) {
    Object *G = Heap->allocate(Ctx, 256, 1, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  EXPECT_GE(Heap->completedCycles(), 3u);
  Object *Again = Ctx.getRoot(0);
  ASSERT_EQ(Again, Keep);
  EXPECT_EQ(Keep->classId(), 9u);
  EXPECT_EQ(Keep->payload()[5], 0x77);
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, ConcurrentCyclesActuallyHappen) {
  auto Heap = GcHeap::create(cgcOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(64);
  // A steady live set plus churn: the kickoff formula must fire and
  // cycles must run (mostly) concurrently.
  for (int I = 0; I < 64; ++I) {
    Object *Live = Heap->allocate(Ctx, 8000, 0, 0);
    ASSERT_NE(Live, nullptr);
    Ctx.setRoot(I, Live);
  }
  size_t Total = 0;
  while (Total < 64u << 20) {
    Object *G = Heap->allocate(Ctx, 512, 2, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  auto Records = Heap->stats().snapshot();
  ASSERT_GE(Records.size(), 2u);
  size_t ConcurrentCycles = 0;
  for (const auto &R : Records)
    if (R.Concurrent) {
      ++ConcurrentCycles;
      EXPECT_GT(R.BytesTracedConcurrent + R.BytesTracedFinal, 0u);
    }
  EXPECT_GT(ConcurrentCycles, 0u) << "no cycle ran concurrently";
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, MutationDuringConcurrentPhaseIsSafe) {
  // Continuously rewire a live structure while cycles run; the final
  // structure must be exactly what the mutator built. The old-holder
  // rewire targets are randomized (CGC_SEED reproduces a failing
  // interleaving's mutation pattern).
  Random Rng(testSeed(0x11e7a7e, "MutationDuringConcurrentPhaseIsSafe"));
  auto Heap = GcHeap::create(cgcOptions());
  MutatorContext &Ctx = Heap->attachThread();
  constexpr int NumSlots = 128;
  Ctx.reserveRoots(NumSlots);
  std::vector<uint32_t> Expected(NumSlots, 0);
  for (int Round = 0; Round < 30000; ++Round) {
    int Slot = Round % NumSlots;
    Object *Holder = Heap->allocate(Ctx, 16, 1, 0);
    ASSERT_NE(Holder, nullptr);
    Object *Payload = Heap->allocate(Ctx, 16, 0, 0);
    ASSERT_NE(Payload, nullptr);
    uint32_t Tag = static_cast<uint32_t>(Round);
    std::memcpy(Payload->payload(), &Tag, 4);
    Heap->writeRef(Ctx, Holder, 0, Payload);
    Ctx.setRoot(Slot, Holder);
    Expected[Slot] = Tag;
    // Also rewire a random OLD holder (dirty-card path).
    int OldSlot = static_cast<int>(Rng.nextBelow(NumSlots));
    Object *Old = Ctx.getRoot(OldSlot);
    if (Old && OldSlot != Slot) {
      Object *Fresh = Heap->allocate(Ctx, 16, 0, 0);
      ASSERT_NE(Fresh, nullptr);
      uint32_t Tag2 = Tag ^ 0xA5A5A5A5;
      std::memcpy(Fresh->payload(), &Tag2, 4);
      Heap->writeRef(Ctx, Old, 0, Fresh);
      Expected[OldSlot] = Tag2;
    }
  }
  Heap->requestGC(&Ctx);
  for (int I = 0; I < NumSlots; ++I) {
    Object *Holder = Ctx.getRoot(I);
    ASSERT_NE(Holder, nullptr);
    Object *Payload = GcHeap::readRef(Holder, 0);
    ASSERT_NE(Payload, nullptr) << "slot " << I;
    uint32_t Tag;
    std::memcpy(&Tag, Payload->payload(), 4);
    EXPECT_EQ(Tag, Expected[I]) << "slot " << I;
  }
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, TerminationDetectedWithoutAllocationFailure) {
  // With an early kickoff (TR1-style) and little live data, concurrent
  // tracing should finish before memory runs out at least once.
  GcOptions Opts = cgcOptions();
  Opts.TracingRate = 2.0;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(4);
  size_t Total = 0;
  while (Total < 48u << 20) {
    Object *G = Heap->allocate(Ctx, 300, 1, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  auto Records = Heap->stats().snapshot();
  bool AnyCompletedConcurrently = false;
  for (const auto &R : Records)
    if (R.Concurrent && R.CompletedConcurrently) {
      AnyCompletedConcurrently = true;
      EXPECT_GT(R.FreeAtConcurrentCompletion, 0u);
    }
  EXPECT_TRUE(AnyCompletedConcurrently);
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, PauseDecompositionRecorded) {
  auto Heap = GcHeap::create(cgcOptions());
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(32);
  for (int I = 0; I < 32; ++I)
    Ctx.setRoot(I, Heap->allocate(Ctx, 4000, 1, 0));
  size_t Total = 0;
  while (Total < 32u << 20) {
    Object *G = Heap->allocate(Ctx, 256, 1, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  bool SawConcurrent = false;
  for (const auto &R : Heap->stats().snapshot()) {
    EXPECT_GE(R.PauseMs, 0.0);
    if (!R.Concurrent)
      continue;
    SawConcurrent = true;
    // Decomposition pieces are each bounded by the total pause.
    EXPECT_LE(R.FinalMarkMs, R.PauseMs + 0.001);
    EXPECT_LE(R.SweepMs, R.PauseMs + 0.001);
    EXPECT_GE(R.ConcurrentPhaseMs, 0.0);
  }
  EXPECT_TRUE(SawConcurrent);
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, ManyMutatorsWithBackgroundThreads) {
  GcOptions Opts = cgcOptions(16);
  Opts.BackgroundThreads = 2;
  auto Heap = GcHeap::create(Opts);
  constexpr int NumThreads = 6;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      MutatorContext &Ctx = Heap->attachThread();
      constexpr int Slots = 64;
      Ctx.reserveRoots(Slots);
      for (int I = 0; I < 8000; ++I) {
        Object *Node = Heap->allocate(Ctx, 40, 1,
                                      static_cast<uint16_t>(T + 1));
        if (!Node) {
          ++Failures;
          break;
        }
        Object *Prev = Ctx.getRoot(I % Slots);
        if (Prev)
          Heap->writeRef(Ctx, Node, 0, Prev);
        Ctx.setRoot(I % Slots, Node);
      }
      // Validate: every retained chain node has this thread's class id.
      for (int S = 0; S < Slots; ++S) {
        int Depth = 0;
        for (Object *N = Ctx.getRoot(S); N && Depth < 200;
             N = GcHeap::readRef(N, 0), ++Depth)
          if (N->classId() != static_cast<uint16_t>(T + 1))
            ++Failures;
      }
      Heap->detachThread(Ctx);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(ConcurrentGcTest, IdleThreadsDoNotBlockCollection) {
  auto Heap = GcHeap::create(cgcOptions());
  std::atomic<bool> Stop{false};
  // A thread that parks in an idle region for the whole test.
  std::thread Idler([&] {
    MutatorContext &Ctx = Heap->attachThread();
    Heap->enterIdle(Ctx);
    while (!Stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Heap->exitIdle(Ctx);
    Heap->detachThread(Ctx);
  });
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  size_t Total = 0;
  while (Total < 24u << 20) {
    Object *G = Heap->allocate(Ctx, 500, 0, 0);
    ASSERT_NE(G, nullptr);
    Total += G->sizeBytes();
  }
  EXPECT_GE(Heap->completedCycles(), 1u);
  Heap->detachThread(Ctx);
  Stop.store(true);
  Idler.join();
}

TEST(ConcurrentGcTest, DeferredObjectsEventuallyTraced) {
  // Force heavy deferral: tiny caches mean allocation bits publish
  // rarely relative to tracing.
  GcOptions Opts = cgcOptions();
  Opts.AllocCacheBytes = 16u << 10;
  Opts.LargeObjectBytes = 8u << 10;
  Opts.TracingRate = 2.0; // Trace early and often.
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  constexpr int Slots = 256;
  Ctx.reserveRoots(Slots);
  for (int I = 0; I < 40000; ++I) {
    Object *Node = Heap->allocate(Ctx, 48, 1, 1);
    ASSERT_NE(Node, nullptr);
    Object *Prev = Ctx.getRoot(I % Slots);
    if (Prev)
      Heap->writeRef(Ctx, Node, 0, Prev);
    Ctx.setRoot(I % Slots, Node);
  }
  uint64_t Deferred = 0;
  for (const auto &R : Heap->stats().snapshot())
    Deferred += R.DeferredObjects;
  // The run must stay correct whether or not deferral triggered; verify
  // reachability end-to-end.
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
  SUCCEED() << "deferred objects observed: " << Deferred;
}

TEST(ConcurrentGcTest, WorksWithZeroBackgroundThreads) {
  GcOptions Opts = cgcOptions();
  Opts.BackgroundThreads = 0; // Pure incremental mode.
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(16);
  size_t Total = 0;
  while (Total < 32u << 20) {
    Object *G = Heap->allocate(Ctx, 512, 1, 0);
    ASSERT_NE(G, nullptr);
    Ctx.setRoot(static_cast<size_t>(Total / 512) % 16, G);
    Total += G->sizeBytes();
  }
  EXPECT_GE(Heap->completedCycles(), 1u);
  Heap->detachThread(Ctx);
}

TEST(ConcurrentGcTest, OverflowPathKeepsHeapSound) {
  // A tiny packet pool forces overflow treatment (mark + dirty card).
  GcOptions Opts = cgcOptions();
  Opts.NumWorkPackets = 4;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  constexpr int Slots = 64;
  Ctx.reserveRoots(Slots);
  // Deep linked structures make marking queue-heavy.
  for (int I = 0; I < 20000; ++I) {
    Object *Node = Heap->allocate(Ctx, 24, 2, 3);
    ASSERT_NE(Node, nullptr);
    Object *A = Ctx.getRoot(I % Slots);
    Object *B = Ctx.getRoot((I * 7 + 1) % Slots);
    if (A)
      Heap->writeRef(Ctx, Node, 0, A);
    if (B)
      Heap->writeRef(Ctx, Node, 1, B);
    Ctx.setRoot(I % Slots, Node);
  }
  VerifyResult V = Heap->verifyNow(&Ctx);
  EXPECT_TRUE(V.Ok) << V.Error;
  Heap->detachThread(Ctx);
}

} // namespace
