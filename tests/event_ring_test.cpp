//===- event_ring_test.cpp - EventRing and GcObserver unit tests --------------//
///
/// Locks in the lock-free event-ring contract: SPSC push/drain ordering,
/// wraparound drop-oldest accounting by cursor arithmetic, observer-level
/// multi-ring merge ordered by timestamp, and a TSan-clean concurrent
/// producers-vs-drain hammer.
///
//===----------------------------------------------------------------------===//

#include "observe/Observe.h"
#include "support/Timing.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwoMin16) {
  EXPECT_EQ(EventRing(1, 0).capacity(), 16u);
  EXPECT_EQ(EventRing(1, 5).capacity(), 16u);
  EXPECT_EQ(EventRing(1, 16).capacity(), 16u);
  EXPECT_EQ(EventRing(1, 17).capacity(), 32u);
  EXPECT_EQ(EventRing(1, 1000).capacity(), 1024u);
}

TEST(EventRingTest, PushDrainPreservesOrderAndFields) {
  EventRing Ring(/*OwnerThreadId=*/7, /*CapacityEvents=*/64);
  for (uint64_t I = 0; I < 10; ++I)
    Ring.push(/*TimeNs=*/100 + I, EventKind::PacketGet, /*Arg0=*/I,
              /*Arg1=*/I * 2);

  std::vector<EventRecord> Out;
  EXPECT_EQ(Ring.drain(Out), 0u);
  ASSERT_EQ(Out.size(), 10u);
  for (uint64_t I = 0; I < 10; ++I) {
    EXPECT_EQ(Out[I].TimeNs, 100 + I);
    EXPECT_EQ(Out[I].ThreadId, 7u);
    EXPECT_EQ(Out[I].Kind, EventKind::PacketGet);
    EXPECT_EQ(Out[I].Arg0, I);
    EXPECT_EQ(Out[I].Arg1, I * 2);
  }
  EXPECT_EQ(Ring.pushedCount(), 10u);
  EXPECT_EQ(Ring.droppedCount(), 0u);
}

TEST(EventRingTest, WraparoundDropsOldestAndCountsExactly) {
  EventRing Ring(1, 16); // exact power of two, no rounding
  const uint64_t Pushed = 40;
  for (uint64_t I = 0; I < Pushed; ++I)
    Ring.push(I, EventKind::SweepSlice, I, 0);

  std::vector<EventRecord> Out;
  uint64_t Dropped = Ring.drain(Out);
  EXPECT_EQ(Dropped, Pushed - 16);
  ASSERT_EQ(Out.size(), 16u);
  // The survivors are exactly the newest 16, still in push order.
  for (uint64_t I = 0; I < 16; ++I)
    EXPECT_EQ(Out[I].Arg0, Pushed - 16 + I);
  EXPECT_EQ(Ring.droppedCount(), Pushed - 16);
  EXPECT_EQ(Ring.pushedCount(), Pushed);
}

TEST(EventRingTest, SecondDrainSeesOnlyNewRecords) {
  EventRing Ring(1, 64);
  Ring.push(1, EventKind::PacketGet, 10, 0);
  Ring.push(2, EventKind::PacketPut, 11, 0);
  std::vector<EventRecord> Out;
  EXPECT_EQ(Ring.drain(Out), 0u);
  EXPECT_EQ(Out.size(), 2u);

  Out.clear();
  EXPECT_EQ(Ring.drain(Out), 0u);
  EXPECT_TRUE(Out.empty()); // nothing new

  Ring.push(3, EventKind::Overflow, 12, 0);
  EXPECT_EQ(Ring.drain(Out), 0u);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Arg0, 12u);
}

TEST(EventRingTest, DropAccountingAcrossMultipleDrains) {
  EventRing Ring(1, 16);
  // First overflow window.
  for (uint64_t I = 0; I < 20; ++I)
    Ring.push(I, EventKind::PacketGet, I, 0);
  std::vector<EventRecord> Out;
  EXPECT_EQ(Ring.drain(Out), 4u);
  // Second overflow window: cursor arithmetic must not double-count the
  // earlier drop.
  Out.clear();
  for (uint64_t I = 0; I < 17; ++I)
    Ring.push(I, EventKind::PacketGet, I, 0);
  EXPECT_EQ(Ring.drain(Out), 1u);
  EXPECT_EQ(Out.size(), 16u);
  EXPECT_EQ(Ring.droppedCount(), 5u);
}

TEST(GcObserverTest, DisabledObserverRecordsNothing) {
  GcObserver Obs(/*Enabled=*/false);
  Obs.record(EventKind::PacketGet, 1, 2);
  EXPECT_EQ(Obs.ringCount(), 0u);
  EXPECT_TRUE(Obs.drainAll().empty());
}

TEST(GcObserverTest, DrainAllMergesByTimestamp) {
  GcObserver Obs(/*Enabled=*/true, /*RingCapacityEvents=*/1024);
  const unsigned NumThreads = 4;
  const uint64_t PerThread = 200;

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Obs, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        Obs.record(EventKind::PacketGet, /*Arg0=*/I, /*Arg1=*/T);
    });
  for (std::thread &T : Threads)
    T.join();

  std::vector<EventRecord> All = Obs.drainAll();
  ASSERT_EQ(All.size(), NumThreads * PerThread);
  EXPECT_EQ(Obs.ringCount(), NumThreads);
  EXPECT_EQ(Obs.droppedEvents(), 0u);

  // Global order: non-decreasing timestamps.
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LE(All[I - 1].TimeNs, All[I].TimeNs);

  // Per-thread order: each producer's Arg0 sequence survives the merge
  // (timestamps are monotone per thread and the merge sort is stable).
  std::vector<uint64_t> CountPerTid;
  for (const EventRecord &R : All) {
    ASSERT_NE(R.ThreadId, 0u);
    if (R.ThreadId >= CountPerTid.size())
      CountPerTid.resize(R.ThreadId + 1, 0);
    EXPECT_EQ(R.Arg0, CountPerTid[R.ThreadId]++);
  }
}

TEST(GcObserverTest, ThreadReturningToObserverReusesItsRing) {
  GcObserver Obs(/*Enabled=*/true, 64);
  Obs.record(EventKind::PacketGet, 1, 0);
  {
    // A second observer on the same thread gets its own ring; the cache
    // must not leak records across observers.
    GcObserver Other(/*Enabled=*/true, 64);
    Other.record(EventKind::PacketPut, 2, 0);
    EXPECT_EQ(Other.drainAll().size(), 1u);
  }
  // Back on the first observer: still one ring, record lands there.
  Obs.record(EventKind::PacketGet, 3, 0);
  EXPECT_EQ(Obs.ringCount(), 1u);
  EXPECT_EQ(Obs.drainAll().size(), 2u);
}

TEST(GcObserverTest, ConcurrentProducersAndDrainsAreClean) {
  // TSan target: 4 producers hammer small rings while the main thread
  // drains concurrently. Totals must reconcile: drained + dropped +
  // still-resident == pushed.
  uint64_t Seed = testSeed(0x0b5e11, "event_ring_hammer");
  (void)Seed; // The hammer is schedule-driven; the seed is for future knobs.
  GcObserver Obs(/*Enabled=*/true, /*RingCapacityEvents=*/64);
  const unsigned NumThreads = 4;
  const uint64_t PerThread = 20000;

  std::atomic<bool> Stop{false};
  std::vector<EventRecord> Drained;
  std::thread Drainer([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      std::vector<EventRecord> Batch = Obs.drainAll();
      Drained.insert(Drained.end(), Batch.begin(), Batch.end());
    }
  });

  std::vector<std::thread> Producers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Producers.emplace_back([&Obs, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        Obs.record(EventKind::PacketTransition, I, T);
    });
  for (std::thread &T : Producers)
    T.join();
  Stop.store(true, std::memory_order_release);
  Drainer.join();

  std::vector<EventRecord> Tail = Obs.drainAll();
  uint64_t Total = Drained.size() + Tail.size() + Obs.droppedEvents();
  EXPECT_EQ(Total, uint64_t(NumThreads) * PerThread);

  // Every drained record is intact (never torn): ThreadId and Kind are
  // written together in the meta word, Arg0 is a valid sequence number.
  for (const EventRecord &R : Drained) {
    EXPECT_EQ(R.Kind, EventKind::PacketTransition);
    EXPECT_LT(R.Arg0, PerThread);
    EXPECT_LT(R.Arg1, NumThreads);
  }
}

} // namespace
