file(REMOVE_RECURSE
  "libcgc_heap.a"
)
