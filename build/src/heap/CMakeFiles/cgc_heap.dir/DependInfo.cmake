
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/AllocationCache.cpp" "src/heap/CMakeFiles/cgc_heap.dir/AllocationCache.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/AllocationCache.cpp.o.d"
  "/root/repo/src/heap/BitVector8.cpp" "src/heap/CMakeFiles/cgc_heap.dir/BitVector8.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/BitVector8.cpp.o.d"
  "/root/repo/src/heap/CardTable.cpp" "src/heap/CMakeFiles/cgc_heap.dir/CardTable.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/CardTable.cpp.o.d"
  "/root/repo/src/heap/FreeList.cpp" "src/heap/CMakeFiles/cgc_heap.dir/FreeList.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/FreeList.cpp.o.d"
  "/root/repo/src/heap/HeapSpace.cpp" "src/heap/CMakeFiles/cgc_heap.dir/HeapSpace.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/HeapSpace.cpp.o.d"
  "/root/repo/src/heap/ShardedFreeList.cpp" "src/heap/CMakeFiles/cgc_heap.dir/ShardedFreeList.cpp.o" "gcc" "src/heap/CMakeFiles/cgc_heap.dir/ShardedFreeList.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
