file(REMOVE_RECURSE
  "CMakeFiles/cgc_heap.dir/AllocationCache.cpp.o"
  "CMakeFiles/cgc_heap.dir/AllocationCache.cpp.o.d"
  "CMakeFiles/cgc_heap.dir/BitVector8.cpp.o"
  "CMakeFiles/cgc_heap.dir/BitVector8.cpp.o.d"
  "CMakeFiles/cgc_heap.dir/CardTable.cpp.o"
  "CMakeFiles/cgc_heap.dir/CardTable.cpp.o.d"
  "CMakeFiles/cgc_heap.dir/FreeList.cpp.o"
  "CMakeFiles/cgc_heap.dir/FreeList.cpp.o.d"
  "CMakeFiles/cgc_heap.dir/HeapSpace.cpp.o"
  "CMakeFiles/cgc_heap.dir/HeapSpace.cpp.o.d"
  "CMakeFiles/cgc_heap.dir/ShardedFreeList.cpp.o"
  "CMakeFiles/cgc_heap.dir/ShardedFreeList.cpp.o.d"
  "libcgc_heap.a"
  "libcgc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
