# Empty compiler generated dependencies file for cgc_heap.
# This may be replaced when dependencies are built.
