# Empty compiler generated dependencies file for cgc_mutator.
# This may be replaced when dependencies are built.
