file(REMOVE_RECURSE
  "libcgc_mutator.a"
)
