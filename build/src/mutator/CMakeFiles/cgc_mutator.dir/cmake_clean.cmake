file(REMOVE_RECURSE
  "CMakeFiles/cgc_mutator.dir/ThreadRegistry.cpp.o"
  "CMakeFiles/cgc_mutator.dir/ThreadRegistry.cpp.o.d"
  "libcgc_mutator.a"
  "libcgc_mutator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_mutator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
