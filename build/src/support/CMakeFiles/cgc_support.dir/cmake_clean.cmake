file(REMOVE_RECURSE
  "CMakeFiles/cgc_support.dir/Fences.cpp.o"
  "CMakeFiles/cgc_support.dir/Fences.cpp.o.d"
  "CMakeFiles/cgc_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/cgc_support.dir/TablePrinter.cpp.o.d"
  "libcgc_support.a"
  "libcgc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
