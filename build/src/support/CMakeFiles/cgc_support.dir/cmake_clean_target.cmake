file(REMOVE_RECURSE
  "libcgc_support.a"
)
