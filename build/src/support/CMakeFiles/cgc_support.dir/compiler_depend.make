# Empty compiler generated dependencies file for cgc_support.
# This may be replaced when dependencies are built.
