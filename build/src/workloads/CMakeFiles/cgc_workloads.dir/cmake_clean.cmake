file(REMOVE_RECURSE
  "CMakeFiles/cgc_workloads.dir/BinaryTrees.cpp.o"
  "CMakeFiles/cgc_workloads.dir/BinaryTrees.cpp.o.d"
  "CMakeFiles/cgc_workloads.dir/Compiler.cpp.o"
  "CMakeFiles/cgc_workloads.dir/Compiler.cpp.o.d"
  "CMakeFiles/cgc_workloads.dir/GraphChurn.cpp.o"
  "CMakeFiles/cgc_workloads.dir/GraphChurn.cpp.o.d"
  "CMakeFiles/cgc_workloads.dir/Warehouse.cpp.o"
  "CMakeFiles/cgc_workloads.dir/Warehouse.cpp.o.d"
  "libcgc_workloads.a"
  "libcgc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
