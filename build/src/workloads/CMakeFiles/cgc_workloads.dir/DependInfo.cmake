
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BinaryTrees.cpp" "src/workloads/CMakeFiles/cgc_workloads.dir/BinaryTrees.cpp.o" "gcc" "src/workloads/CMakeFiles/cgc_workloads.dir/BinaryTrees.cpp.o.d"
  "/root/repo/src/workloads/Compiler.cpp" "src/workloads/CMakeFiles/cgc_workloads.dir/Compiler.cpp.o" "gcc" "src/workloads/CMakeFiles/cgc_workloads.dir/Compiler.cpp.o.d"
  "/root/repo/src/workloads/GraphChurn.cpp" "src/workloads/CMakeFiles/cgc_workloads.dir/GraphChurn.cpp.o" "gcc" "src/workloads/CMakeFiles/cgc_workloads.dir/GraphChurn.cpp.o.d"
  "/root/repo/src/workloads/Warehouse.cpp" "src/workloads/CMakeFiles/cgc_workloads.dir/Warehouse.cpp.o" "gcc" "src/workloads/CMakeFiles/cgc_workloads.dir/Warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/cgc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/mutator/CMakeFiles/cgc_mutator.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/cgc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/workpackets/CMakeFiles/cgc_packets.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
