# Empty dependencies file for cgc_workloads.
# This may be replaced when dependencies are built.
