file(REMOVE_RECURSE
  "libcgc_workloads.a"
)
