# Empty compiler generated dependencies file for cgc_gc.
# This may be replaced when dependencies are built.
