
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/CardCleaner.cpp" "src/gc/CMakeFiles/cgc_gc.dir/CardCleaner.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/CardCleaner.cpp.o.d"
  "/root/repo/src/gc/CollectorBase.cpp" "src/gc/CMakeFiles/cgc_gc.dir/CollectorBase.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/CollectorBase.cpp.o.d"
  "/root/repo/src/gc/Compactor.cpp" "src/gc/CMakeFiles/cgc_gc.dir/Compactor.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/Compactor.cpp.o.d"
  "/root/repo/src/gc/ConcurrentCollector.cpp" "src/gc/CMakeFiles/cgc_gc.dir/ConcurrentCollector.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/ConcurrentCollector.cpp.o.d"
  "/root/repo/src/gc/GcStats.cpp" "src/gc/CMakeFiles/cgc_gc.dir/GcStats.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/GcStats.cpp.o.d"
  "/root/repo/src/gc/HeapVerifier.cpp" "src/gc/CMakeFiles/cgc_gc.dir/HeapVerifier.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/HeapVerifier.cpp.o.d"
  "/root/repo/src/gc/Pacer.cpp" "src/gc/CMakeFiles/cgc_gc.dir/Pacer.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/Pacer.cpp.o.d"
  "/root/repo/src/gc/StealingMarker.cpp" "src/gc/CMakeFiles/cgc_gc.dir/StealingMarker.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/StealingMarker.cpp.o.d"
  "/root/repo/src/gc/StwCollector.cpp" "src/gc/CMakeFiles/cgc_gc.dir/StwCollector.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/StwCollector.cpp.o.d"
  "/root/repo/src/gc/Sweeper.cpp" "src/gc/CMakeFiles/cgc_gc.dir/Sweeper.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/Sweeper.cpp.o.d"
  "/root/repo/src/gc/Tracer.cpp" "src/gc/CMakeFiles/cgc_gc.dir/Tracer.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/Tracer.cpp.o.d"
  "/root/repo/src/gc/WorkerPool.cpp" "src/gc/CMakeFiles/cgc_gc.dir/WorkerPool.cpp.o" "gcc" "src/gc/CMakeFiles/cgc_gc.dir/WorkerPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/cgc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/workpackets/CMakeFiles/cgc_packets.dir/DependInfo.cmake"
  "/root/repo/build/src/mutator/CMakeFiles/cgc_mutator.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
