file(REMOVE_RECURSE
  "libcgc_gc.a"
)
