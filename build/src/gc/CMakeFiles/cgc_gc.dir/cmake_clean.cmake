file(REMOVE_RECURSE
  "CMakeFiles/cgc_gc.dir/CardCleaner.cpp.o"
  "CMakeFiles/cgc_gc.dir/CardCleaner.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/CollectorBase.cpp.o"
  "CMakeFiles/cgc_gc.dir/CollectorBase.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/Compactor.cpp.o"
  "CMakeFiles/cgc_gc.dir/Compactor.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/ConcurrentCollector.cpp.o"
  "CMakeFiles/cgc_gc.dir/ConcurrentCollector.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/GcStats.cpp.o"
  "CMakeFiles/cgc_gc.dir/GcStats.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/HeapVerifier.cpp.o"
  "CMakeFiles/cgc_gc.dir/HeapVerifier.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/Pacer.cpp.o"
  "CMakeFiles/cgc_gc.dir/Pacer.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/StealingMarker.cpp.o"
  "CMakeFiles/cgc_gc.dir/StealingMarker.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/StwCollector.cpp.o"
  "CMakeFiles/cgc_gc.dir/StwCollector.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/Sweeper.cpp.o"
  "CMakeFiles/cgc_gc.dir/Sweeper.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/Tracer.cpp.o"
  "CMakeFiles/cgc_gc.dir/Tracer.cpp.o.d"
  "CMakeFiles/cgc_gc.dir/WorkerPool.cpp.o"
  "CMakeFiles/cgc_gc.dir/WorkerPool.cpp.o.d"
  "libcgc_gc.a"
  "libcgc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
