file(REMOVE_RECURSE
  "CMakeFiles/cgc_packets.dir/PacketPool.cpp.o"
  "CMakeFiles/cgc_packets.dir/PacketPool.cpp.o.d"
  "libcgc_packets.a"
  "libcgc_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
