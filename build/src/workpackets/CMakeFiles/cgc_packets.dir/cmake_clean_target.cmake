file(REMOVE_RECURSE
  "libcgc_packets.a"
)
