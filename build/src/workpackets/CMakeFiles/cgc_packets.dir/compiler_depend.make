# Empty compiler generated dependencies file for cgc_packets.
# This may be replaced when dependencies are built.
