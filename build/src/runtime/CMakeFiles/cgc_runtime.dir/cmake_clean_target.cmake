file(REMOVE_RECURSE
  "libcgc_runtime.a"
)
