# Empty compiler generated dependencies file for cgc_runtime.
# This may be replaced when dependencies are built.
