file(REMOVE_RECURSE
  "CMakeFiles/cgc_runtime.dir/GcHeap.cpp.o"
  "CMakeFiles/cgc_runtime.dir/GcHeap.cpp.o.d"
  "libcgc_runtime.a"
  "libcgc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
