add_test([=[SoakTest.MixedWorkloadsShareOneHeap]=]  /root/repo/build/tests/soak_test [==[--gtest_filter=SoakTest.MixedWorkloadsShareOneHeap]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SoakTest.MixedWorkloadsShareOneHeap]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 300)
set(  soak_test_TESTS SoakTest.MixedWorkloadsShareOneHeap)
