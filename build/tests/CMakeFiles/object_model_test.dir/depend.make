# Empty dependencies file for object_model_test.
# This may be replaced when dependencies are built.
