file(REMOVE_RECURSE
  "CMakeFiles/object_model_test.dir/object_model_test.cpp.o"
  "CMakeFiles/object_model_test.dir/object_model_test.cpp.o.d"
  "object_model_test"
  "object_model_test.pdb"
  "object_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
