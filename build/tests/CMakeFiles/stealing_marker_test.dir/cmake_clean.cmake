file(REMOVE_RECURSE
  "CMakeFiles/stealing_marker_test.dir/stealing_marker_test.cpp.o"
  "CMakeFiles/stealing_marker_test.dir/stealing_marker_test.cpp.o.d"
  "stealing_marker_test"
  "stealing_marker_test.pdb"
  "stealing_marker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stealing_marker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
