# Empty dependencies file for stealing_marker_test.
# This may be replaced when dependencies are built.
