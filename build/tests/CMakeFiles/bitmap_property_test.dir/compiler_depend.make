# Empty compiler generated dependencies file for bitmap_property_test.
# This may be replaced when dependencies are built.
