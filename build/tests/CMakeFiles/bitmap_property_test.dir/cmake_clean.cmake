file(REMOVE_RECURSE
  "CMakeFiles/bitmap_property_test.dir/bitmap_property_test.cpp.o"
  "CMakeFiles/bitmap_property_test.dir/bitmap_property_test.cpp.o.d"
  "bitmap_property_test"
  "bitmap_property_test.pdb"
  "bitmap_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
