file(REMOVE_RECURSE
  "CMakeFiles/sharded_freelist_test.dir/sharded_freelist_test.cpp.o"
  "CMakeFiles/sharded_freelist_test.dir/sharded_freelist_test.cpp.o.d"
  "sharded_freelist_test"
  "sharded_freelist_test.pdb"
  "sharded_freelist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_freelist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
