
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sharded_freelist_test.cpp" "tests/CMakeFiles/sharded_freelist_test.dir/sharded_freelist_test.cpp.o" "gcc" "tests/CMakeFiles/sharded_freelist_test.dir/sharded_freelist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cgc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/cgc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/mutator/CMakeFiles/cgc_mutator.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/cgc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/workpackets/CMakeFiles/cgc_packets.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
