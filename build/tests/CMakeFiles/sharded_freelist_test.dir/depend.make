# Empty dependencies file for sharded_freelist_test.
# This may be replaced when dependencies are built.
