file(REMOVE_RECURSE
  "CMakeFiles/packet_pool_test.dir/packet_pool_test.cpp.o"
  "CMakeFiles/packet_pool_test.dir/packet_pool_test.cpp.o.d"
  "packet_pool_test"
  "packet_pool_test.pdb"
  "packet_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
