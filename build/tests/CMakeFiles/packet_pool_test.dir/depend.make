# Empty dependencies file for packet_pool_test.
# This may be replaced when dependencies are built.
