file(REMOVE_RECURSE
  "CMakeFiles/pacer_test.dir/pacer_test.cpp.o"
  "CMakeFiles/pacer_test.dir/pacer_test.cpp.o.d"
  "pacer_test"
  "pacer_test.pdb"
  "pacer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
