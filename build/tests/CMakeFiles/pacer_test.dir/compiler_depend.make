# Empty compiler generated dependencies file for pacer_test.
# This may be replaced when dependencies are built.
