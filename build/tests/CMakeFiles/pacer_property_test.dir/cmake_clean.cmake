file(REMOVE_RECURSE
  "CMakeFiles/pacer_property_test.dir/pacer_property_test.cpp.o"
  "CMakeFiles/pacer_property_test.dir/pacer_property_test.cpp.o.d"
  "pacer_property_test"
  "pacer_property_test.pdb"
  "pacer_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
