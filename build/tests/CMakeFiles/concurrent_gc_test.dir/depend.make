# Empty dependencies file for concurrent_gc_test.
# This may be replaced when dependencies are built.
