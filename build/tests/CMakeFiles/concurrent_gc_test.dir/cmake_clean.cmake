file(REMOVE_RECURSE
  "CMakeFiles/concurrent_gc_test.dir/concurrent_gc_test.cpp.o"
  "CMakeFiles/concurrent_gc_test.dir/concurrent_gc_test.cpp.o.d"
  "concurrent_gc_test"
  "concurrent_gc_test.pdb"
  "concurrent_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
