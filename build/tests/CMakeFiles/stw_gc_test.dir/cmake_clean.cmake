file(REMOVE_RECURSE
  "CMakeFiles/stw_gc_test.dir/stw_gc_test.cpp.o"
  "CMakeFiles/stw_gc_test.dir/stw_gc_test.cpp.o.d"
  "stw_gc_test"
  "stw_gc_test.pdb"
  "stw_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stw_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
