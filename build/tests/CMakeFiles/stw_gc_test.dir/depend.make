# Empty dependencies file for stw_gc_test.
# This may be replaced when dependencies are built.
