# Empty dependencies file for card_cleaning_test.
# This may be replaced when dependencies are built.
