file(REMOVE_RECURSE
  "CMakeFiles/card_cleaning_test.dir/card_cleaning_test.cpp.o"
  "CMakeFiles/card_cleaning_test.dir/card_cleaning_test.cpp.o.d"
  "card_cleaning_test"
  "card_cleaning_test.pdb"
  "card_cleaning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/card_cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
