# Empty dependencies file for trace_context_test.
# This may be replaced when dependencies are built.
