file(REMOVE_RECURSE
  "CMakeFiles/trace_context_test.dir/trace_context_test.cpp.o"
  "CMakeFiles/trace_context_test.dir/trace_context_test.cpp.o.d"
  "trace_context_test"
  "trace_context_test.pdb"
  "trace_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
