# Empty compiler generated dependencies file for cardtable_test.
# This may be replaced when dependencies are built.
