file(REMOVE_RECURSE
  "CMakeFiles/cardtable_test.dir/cardtable_test.cpp.o"
  "CMakeFiles/cardtable_test.dir/cardtable_test.cpp.o.d"
  "cardtable_test"
  "cardtable_test.pdb"
  "cardtable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
