file(REMOVE_RECURSE
  "CMakeFiles/allocation_cache_test.dir/allocation_cache_test.cpp.o"
  "CMakeFiles/allocation_cache_test.dir/allocation_cache_test.cpp.o.d"
  "allocation_cache_test"
  "allocation_cache_test.pdb"
  "allocation_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
