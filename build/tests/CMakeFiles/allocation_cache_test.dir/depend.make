# Empty dependencies file for allocation_cache_test.
# This may be replaced when dependencies are built.
