file(REMOVE_RECURSE
  "CMakeFiles/sweeper_test.dir/sweeper_test.cpp.o"
  "CMakeFiles/sweeper_test.dir/sweeper_test.cpp.o.d"
  "sweeper_test"
  "sweeper_test.pdb"
  "sweeper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
