# Empty compiler generated dependencies file for sweeper_test.
# This may be replaced when dependencies are built.
