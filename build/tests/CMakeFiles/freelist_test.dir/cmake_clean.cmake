file(REMOVE_RECURSE
  "CMakeFiles/freelist_test.dir/freelist_test.cpp.o"
  "CMakeFiles/freelist_test.dir/freelist_test.cpp.o.d"
  "freelist_test"
  "freelist_test.pdb"
  "freelist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freelist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
