# Empty compiler generated dependencies file for freelist_test.
# This may be replaced when dependencies are built.
