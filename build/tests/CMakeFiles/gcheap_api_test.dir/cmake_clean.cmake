file(REMOVE_RECURSE
  "CMakeFiles/gcheap_api_test.dir/gcheap_api_test.cpp.o"
  "CMakeFiles/gcheap_api_test.dir/gcheap_api_test.cpp.o.d"
  "gcheap_api_test"
  "gcheap_api_test.pdb"
  "gcheap_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcheap_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
