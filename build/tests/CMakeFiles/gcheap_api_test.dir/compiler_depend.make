# Empty compiler generated dependencies file for gcheap_api_test.
# This may be replaced when dependencies are built.
