# Empty compiler generated dependencies file for lazy_sweep_test.
# This may be replaced when dependencies are built.
