file(REMOVE_RECURSE
  "CMakeFiles/lazy_sweep_test.dir/lazy_sweep_test.cpp.o"
  "CMakeFiles/lazy_sweep_test.dir/lazy_sweep_test.cpp.o.d"
  "lazy_sweep_test"
  "lazy_sweep_test.pdb"
  "lazy_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
