# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/bitmap_property_test[1]_include.cmake")
include("/root/repo/build/tests/cardtable_test[1]_include.cmake")
include("/root/repo/build/tests/freelist_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_freelist_test[1]_include.cmake")
include("/root/repo/build/tests/object_model_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_cache_test[1]_include.cmake")
include("/root/repo/build/tests/packet_pool_test[1]_include.cmake")
include("/root/repo/build/tests/trace_context_test[1]_include.cmake")
include("/root/repo/build/tests/pacer_test[1]_include.cmake")
include("/root/repo/build/tests/tracer_test[1]_include.cmake")
include("/root/repo/build/tests/gcheap_api_test[1]_include.cmake")
include("/root/repo/build/tests/worker_pool_test[1]_include.cmake")
include("/root/repo/build/tests/sweeper_test[1]_include.cmake")
include("/root/repo/build/tests/stw_gc_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_gc_test[1]_include.cmake")
include("/root/repo/build/tests/card_cleaning_test[1]_include.cmake")
include("/root/repo/build/tests/lazy_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/compactor_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/stealing_marker_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pacer_property_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
