file(REMOVE_RECURSE
  "CMakeFiles/table2_metering.dir/table2_metering.cpp.o"
  "CMakeFiles/table2_metering.dir/table2_metering.cpp.o.d"
  "table2_metering"
  "table2_metering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_metering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
