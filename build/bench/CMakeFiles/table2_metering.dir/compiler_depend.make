# Empty compiler generated dependencies file for table2_metering.
# This may be replaced when dependencies are built.
