# Empty dependencies file for ablation_fences.
# This may be replaced when dependencies are built.
