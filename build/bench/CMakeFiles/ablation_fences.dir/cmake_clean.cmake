file(REMOVE_RECURSE
  "CMakeFiles/ablation_fences.dir/ablation_fences.cpp.o"
  "CMakeFiles/ablation_fences.dir/ablation_fences.cpp.o.d"
  "ablation_fences"
  "ablation_fences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
