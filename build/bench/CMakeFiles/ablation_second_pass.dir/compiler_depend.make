# Empty compiler generated dependencies file for ablation_second_pass.
# This may be replaced when dependencies are built.
