file(REMOVE_RECURSE
  "CMakeFiles/ablation_second_pass.dir/ablation_second_pass.cpp.o"
  "CMakeFiles/ablation_second_pass.dir/ablation_second_pass.cpp.o.d"
  "ablation_second_pass"
  "ablation_second_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_second_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
