# Empty dependencies file for fig2_pbob_pauses.
# This may be replaced when dependencies are built.
