file(REMOVE_RECURSE
  "CMakeFiles/fig2_pbob_pauses.dir/fig2_pbob_pauses.cpp.o"
  "CMakeFiles/fig2_pbob_pauses.dir/fig2_pbob_pauses.cpp.o.d"
  "fig2_pbob_pauses"
  "fig2_pbob_pauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pbob_pauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
