file(REMOVE_RECURSE
  "CMakeFiles/packet_memory.dir/packet_memory.cpp.o"
  "CMakeFiles/packet_memory.dir/packet_memory.cpp.o.d"
  "packet_memory"
  "packet_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
