# Empty compiler generated dependencies file for packet_memory.
# This may be replaced when dependencies are built.
