# Empty compiler generated dependencies file for ablation_load_balancer.
# This may be replaced when dependencies are built.
