file(REMOVE_RECURSE
  "CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cpp.o"
  "CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cpp.o.d"
  "ablation_load_balancer"
  "ablation_load_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
