file(REMOVE_RECURSE
  "CMakeFiles/freelist_contention.dir/freelist_contention.cpp.o"
  "CMakeFiles/freelist_contention.dir/freelist_contention.cpp.o.d"
  "freelist_contention"
  "freelist_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freelist_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
