# Empty compiler generated dependencies file for freelist_contention.
# This may be replaced when dependencies are built.
