# Empty compiler generated dependencies file for ablation_lazy_sweep.
# This may be replaced when dependencies are built.
