file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_sweep.dir/ablation_lazy_sweep.cpp.o"
  "CMakeFiles/ablation_lazy_sweep.dir/ablation_lazy_sweep.cpp.o.d"
  "ablation_lazy_sweep"
  "ablation_lazy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
