# Empty dependencies file for table1_tracing_rates.
# This may be replaced when dependencies are built.
