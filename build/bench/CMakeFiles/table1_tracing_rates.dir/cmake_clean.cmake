file(REMOVE_RECURSE
  "CMakeFiles/table1_tracing_rates.dir/table1_tracing_rates.cpp.o"
  "CMakeFiles/table1_tracing_rates.dir/table1_tracing_rates.cpp.o.d"
  "table1_tracing_rates"
  "table1_tracing_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tracing_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
