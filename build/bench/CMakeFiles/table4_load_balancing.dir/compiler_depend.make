# Empty compiler generated dependencies file for table4_load_balancing.
# This may be replaced when dependencies are built.
