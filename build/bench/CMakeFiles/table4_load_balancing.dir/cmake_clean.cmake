file(REMOVE_RECURSE
  "CMakeFiles/table4_load_balancing.dir/table4_load_balancing.cpp.o"
  "CMakeFiles/table4_load_balancing.dir/table4_load_balancing.cpp.o.d"
  "table4_load_balancing"
  "table4_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
