# Empty dependencies file for fig1_specjbb_pauses.
# This may be replaced when dependencies are built.
