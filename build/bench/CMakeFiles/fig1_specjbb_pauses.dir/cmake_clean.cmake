file(REMOVE_RECURSE
  "CMakeFiles/fig1_specjbb_pauses.dir/fig1_specjbb_pauses.cpp.o"
  "CMakeFiles/fig1_specjbb_pauses.dir/fig1_specjbb_pauses.cpp.o.d"
  "fig1_specjbb_pauses"
  "fig1_specjbb_pauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_specjbb_pauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
