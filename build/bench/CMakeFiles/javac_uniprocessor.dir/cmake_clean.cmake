file(REMOVE_RECURSE
  "CMakeFiles/javac_uniprocessor.dir/javac_uniprocessor.cpp.o"
  "CMakeFiles/javac_uniprocessor.dir/javac_uniprocessor.cpp.o.d"
  "javac_uniprocessor"
  "javac_uniprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javac_uniprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
