# Empty dependencies file for javac_uniprocessor.
# This may be replaced when dependencies are built.
