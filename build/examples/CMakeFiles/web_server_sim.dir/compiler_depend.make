# Empty compiler generated dependencies file for web_server_sim.
# This may be replaced when dependencies are built.
