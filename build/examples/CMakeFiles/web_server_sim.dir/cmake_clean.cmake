file(REMOVE_RECURSE
  "CMakeFiles/web_server_sim.dir/web_server_sim.cpp.o"
  "CMakeFiles/web_server_sim.dir/web_server_sim.cpp.o.d"
  "web_server_sim"
  "web_server_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
