file(REMOVE_RECURSE
  "CMakeFiles/pause_timeline.dir/pause_timeline.cpp.o"
  "CMakeFiles/pause_timeline.dir/pause_timeline.cpp.o.d"
  "pause_timeline"
  "pause_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pause_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
