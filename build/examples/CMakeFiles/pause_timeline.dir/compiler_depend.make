# Empty compiler generated dependencies file for pause_timeline.
# This may be replaced when dependencies are built.
