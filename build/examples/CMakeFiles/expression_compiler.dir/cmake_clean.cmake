file(REMOVE_RECURSE
  "CMakeFiles/expression_compiler.dir/expression_compiler.cpp.o"
  "CMakeFiles/expression_compiler.dir/expression_compiler.cpp.o.d"
  "expression_compiler"
  "expression_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
