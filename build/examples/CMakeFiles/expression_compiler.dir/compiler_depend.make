# Empty compiler generated dependencies file for expression_compiler.
# This may be replaced when dependencies are built.
