//===- ablation_second_pass.cpp - the paper's footnote 2 --------------------------//
///
/// Footnote 2 (Section 2): "adding, when possible, a second card
/// cleaning pass yields a further reduction in pause time, without a
/// noticeable impact on throughput." This ablation runs the same
/// workload with one and two concurrent cleaning passes and reports the
/// final-pause card cleaning and the pause times.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Second concurrent card-cleaning pass ablation",
         "footnote 2 (Section 2)");

  TablePrinter Table({"cleaning passes", "cards cleaned concurrently",
                      "cards cleaned in pause", "avg pause ms",
                      "max pause ms", "tx/s", "GCs"});

  for (unsigned Passes : {1u, 2u}) {
    GcOptions Opts;
    Opts.Kind = CollectorKind::MostlyConcurrent;
    Opts.HeapBytes = 48u << 20;
    Opts.ConcurrentCleaningPasses = Passes;
    Opts.BackgroundThreads = 1;
    WarehouseConfig Config = warehouseFor(Opts, 6, 3000, 0.6);
    RunOutcome Run = runWarehouse(Opts, Config);
    Table.addRow({TablePrinter::num(static_cast<uint64_t>(Passes)),
                  TablePrinter::num(Run.Agg.AvgCardsCleanedConcurrent, 0),
                  TablePrinter::num(Run.Agg.AvgCardsCleanedFinal, 0),
                  TablePrinter::num(Run.Agg.AvgPauseMs, 2),
                  TablePrinter::num(Run.Agg.MaxPauseMs, 2),
                  TablePrinter::num(Run.Workload.throughput(), 0),
                  TablePrinter::num(
                      static_cast<uint64_t>(Run.Agg.NumCycles))});
  }
  Table.print();
  std::printf("\nexpected shape: the second pass moves card cleaning out "
              "of the pause (fewer final cards, shorter pauses) at little "
              "throughput cost.\n");
  return 0;
}
