//===- BenchUtil.h - shared harness helpers ---------------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the table/figure reproduction harnesses: run a
/// workload on a configured heap and collect the workload result, the
/// per-cycle records and their aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_BENCH_BENCHUTIL_H
#define CGC_BENCH_BENCHUTIL_H

#include "runtime/GcHeap.h"
#include "support/TablePrinter.h"
#include "workloads/Compiler.h"
#include "workloads/Warehouse.h"

#include <cstdio>
#include <vector>

namespace cgc::bench {

/// Everything a table row needs from one run.
struct RunOutcome {
  WorkloadResult Workload;
  std::vector<CycleRecord> Cycles;
  GcAggregates Agg;
  PacketPoolStats Pool;
  size_t HeapBytes = 0;
};

/// Runs the warehouse workload on a fresh heap with \p Options.
inline RunOutcome runWarehouse(const GcOptions &Options,
                               const WarehouseConfig &Config) {
  auto Heap = GcHeap::create(Options);
  WarehouseWorkload Workload(*Heap, Config);
  RunOutcome Out;
  Out.Workload = Workload.run();
  Out.Cycles = Heap->stats().snapshot();
  Out.Agg = GcAggregates::compute(Out.Cycles);
  Out.Pool = Heap->core().Pool.stats();
  Out.HeapBytes = Heap->core().Heap.sizeBytes();
  return Out;
}

/// Runs the compiler workload on a fresh heap with \p Options.
inline RunOutcome runCompiler(const GcOptions &Options,
                              const CompilerConfig &Config) {
  auto Heap = GcHeap::create(Options);
  CompilerWorkload Workload(*Heap, Config);
  RunOutcome Out;
  Out.Workload = Workload.run();
  Out.Cycles = Heap->stats().snapshot();
  Out.Agg = GcAggregates::compute(Out.Cycles);
  Out.Pool = Heap->core().Pool.stats();
  Out.HeapBytes = Heap->core().Heap.sizeBytes();
  return Out;
}

/// Warehouse config sized for ~\p Occupancy of \p Options' heap.
inline WarehouseConfig warehouseFor(const GcOptions &Options,
                                    unsigned Threads, uint64_t Millis,
                                    double Occupancy = 0.6) {
  WarehouseConfig Config;
  Config.Threads = Threads;
  Config.DurationMs = Millis;
  Config.sizeLiveSet(
      static_cast<size_t>(Occupancy * static_cast<double>(Options.HeapBytes)));
  return Config;
}

/// Prints the standard bench banner.
inline void banner(const char *Title, const char *PaperRef) {
  std::printf("== %s ==\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("host note: single-core reproduction host; shapes (who "
              "wins, ratios), not absolute ms, are the comparison.\n\n");
}

} // namespace cgc::bench

#endif // CGC_BENCH_BENCHUTIL_H
