//===- BenchUtil.h - shared harness helpers ---------------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the table/figure reproduction harnesses: run a
/// workload on a configured heap and collect the workload result, the
/// per-cycle records and their aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef CGC_BENCH_BENCHUTIL_H
#define CGC_BENCH_BENCHUTIL_H

#include "observe/BenchJsonWriter.h"
#include "observe/ChromeTraceExporter.h"
#include "runtime/GcHeap.h"
#include "support/EnvKnob.h"
#include "support/TablePrinter.h"
#include "workloads/Compiler.h"
#include "workloads/Warehouse.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cgc::bench {

/// Pause quantiles from the observer's TotalPause histogram (all ms).
struct PauseQuantiles {
  double P50Ms = 0;
  double P95Ms = 0;
  double P99Ms = 0;
  double MaxMs = 0;
  uint64_t Samples = 0;
};

/// Quantiles of one cooperation-latency histogram (StwEntry /
/// FenceHandshake), all ms.
struct CooperationQuantiles {
  double P50Ms = 0;
  double P99Ms = 0;
  double MaxMs = 0;
  uint64_t Samples = 0;
};

/// Everything a table row needs from one run.
struct RunOutcome {
  WorkloadResult Workload;
  std::vector<CycleRecord> Cycles;
  GcAggregates Agg;
  PacketPoolStats Pool;
  size_t HeapBytes = 0;
  /// From the observability layer (runs always enable GcOptions::Observe;
  /// zeros when the tree is built with CGC_OBSERVE=OFF).
  PauseQuantiles Pauses;
  /// Cooperation-protocol health: stop-the-world entry latency and
  /// fence-handshake completion latency distributions (DESIGN.md §13),
  /// plus the stall counters. A mutator drifting away from its polls
  /// regresses these long before a grace-period timeout fires.
  CooperationQuantiles StwEntry;
  CooperationQuantiles FenceHandshake;
  uint64_t StwStallWarnings = 0;
  uint64_t FenceTimeouts = 0;
  /// Mean achieved tracing rate over concurrent cycles (Table 1's K).
  double KActualAvg = 0;
  /// Mean estimated floating garbage as a fraction of the heap.
  double FloatingGarbageFrac = 0;
  /// Events overwritten before export (ring too small for the run).
  uint64_t DroppedEvents = 0;
};

/// Chrome-trace dump directory (env CGC_BENCH_TRACE_DIR), empty = off.
inline const char *traceDir() {
  const char *Dir = std::getenv("CGC_BENCH_TRACE_DIR");
  return Dir && *Dir ? Dir : nullptr;
}

namespace detail {

inline CooperationQuantiles
cooperationQuantiles(const GcObserver &Obs, PauseMetric Metric) {
  const PauseHistogram &H = Obs.metrics().histogram(Metric);
  CooperationQuantiles Q;
  Q.Samples = H.count();
  Q.P50Ms = static_cast<double>(H.quantile(0.50)) / 1e6;
  Q.P99Ms = static_cast<double>(H.quantile(0.99)) / 1e6;
  Q.MaxMs = static_cast<double>(H.max()) / 1e6;
  return Q;
}

inline void harvestObservability(GcHeap &Heap, RunOutcome &Out) {
  GcObserver &Obs = Heap.core().Obs;
  const PauseHistogram &H =
      Obs.metrics().histogram(PauseMetric::TotalPause);
  Out.Pauses.Samples = H.count();
  Out.Pauses.P50Ms = static_cast<double>(H.quantile(0.50)) / 1e6;
  Out.Pauses.P95Ms = static_cast<double>(H.quantile(0.95)) / 1e6;
  Out.Pauses.P99Ms = static_cast<double>(H.quantile(0.99)) / 1e6;
  Out.Pauses.MaxMs = static_cast<double>(H.max()) / 1e6;

  Out.StwEntry = cooperationQuantiles(Obs, PauseMetric::StwEntry);
  Out.FenceHandshake = cooperationQuantiles(Obs, PauseMetric::FenceHandshake);
  Out.StwStallWarnings = Heap.core().Registry.stwStallWarnings();
  Out.FenceTimeouts = Heap.core().Registry.fenceTimeouts();

  std::vector<CycleGauges> Gauges = Obs.metrics().cycleGauges();
  uint64_t NumConcurrent = 0;
  for (const CycleGauges &G : Gauges) {
    if (G.Concurrent) {
      Out.KActualAvg += G.KActual;
      ++NumConcurrent;
    }
    if (G.HeapBytes)
      Out.FloatingGarbageFrac += static_cast<double>(G.FloatingGarbageBytes) /
                                 static_cast<double>(G.HeapBytes);
  }
  if (NumConcurrent)
    Out.KActualAvg /= static_cast<double>(NumConcurrent);
  if (!Gauges.empty())
    Out.FloatingGarbageFrac /= static_cast<double>(Gauges.size());

  if (const char *Dir = traceDir()) {
    static unsigned RunSeq = 0; // Benches are single-threaded mains.
    std::vector<EventRecord> Events = Obs.drainAll();
    std::string Path =
        std::string(Dir) + "/trace_run" + std::to_string(RunSeq++) + ".json";
    if (ChromeTraceExporter::writeFile(Path, Events))
      std::fprintf(stderr, "chrome trace: %s (%zu events)\n", Path.c_str(),
                   Events.size());
  }
  Out.DroppedEvents = Obs.droppedEvents();
}

} // namespace detail

/// Runs the warehouse workload on a fresh heap with \p Options
/// (observability is always enabled so pause quantiles are collected).
inline RunOutcome runWarehouse(const GcOptions &Options,
                               const WarehouseConfig &Config) {
  GcOptions Opts = Options;
  Opts.Observe = true;
  auto Heap = GcHeap::create(Opts);
  WarehouseWorkload Workload(*Heap, Config);
  RunOutcome Out;
  Out.Workload = Workload.run();
  Out.Cycles = Heap->stats().snapshot();
  Out.Agg = GcAggregates::compute(Out.Cycles);
  Out.Pool = Heap->core().Pool.stats();
  Out.HeapBytes = Heap->core().Heap.sizeBytes();
  detail::harvestObservability(*Heap, Out);
  return Out;
}

/// Runs the compiler workload on a fresh heap with \p Options.
inline RunOutcome runCompiler(const GcOptions &Options,
                              const CompilerConfig &Config) {
  GcOptions Opts = Options;
  Opts.Observe = true;
  auto Heap = GcHeap::create(Opts);
  CompilerWorkload Workload(*Heap, Config);
  RunOutcome Out;
  Out.Workload = Workload.run();
  Out.Cycles = Heap->stats().snapshot();
  Out.Agg = GcAggregates::compute(Out.Cycles);
  Out.Pool = Heap->core().Pool.stats();
  Out.HeapBytes = Heap->core().Heap.sizeBytes();
  detail::harvestObservability(*Heap, Out);
  return Out;
}

/// Per-thread cost clock for per-operation cost metrics: raw TSC where
/// available (cycles), a monotonic-nanosecond stand-in elsewhere. Pair
/// with costClockUnit() when reporting.
inline uint64_t costClock() {
#if defined(__x86_64__)
  unsigned Lo, Hi;
  __asm__ __volatile__("rdtsc" : "=a"(Lo), "=d"(Hi));
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

inline const char *costClockUnit() {
#if defined(__x86_64__)
  return "cycles";
#else
  return "ns";
#endif
}

/// Workload duration override: env CGC_BENCH_MILLIS (for quick CI runs)
/// or \p Default. Malformed or zero values are a hard error (EnvKnob) —
/// a mistyped duration must not silently run the full-length sweep.
inline uint64_t benchMillis(uint64_t Default) {
  uint64_t Millis = envKnobU64("CGC_BENCH_MILLIS", Default);
  if (Millis == 0) {
    std::fprintf(stderr,
                 "error: invalid CGC_BENCH_MILLIS=0: duration must be > 0\n");
    std::exit(2);
  }
  return Millis;
}

/// Series-length override: env CGC_BENCH_MAX_SERIES caps the number of
/// series points (warehouse counts, tracing rates, ...) a bench sweeps.
/// Malformed or zero values are a hard error; values above \p Default
/// leave the sweep unchanged (the knob only shortens).
inline unsigned benchMaxSeries(unsigned Default) {
  uint64_t Max = envKnobU64("CGC_BENCH_MAX_SERIES", Default);
  if (Max == 0) {
    std::fprintf(stderr, "error: invalid CGC_BENCH_MAX_SERIES=0: a sweep "
                         "needs at least one point\n");
    std::exit(2);
  }
  return Max < Default ? static_cast<unsigned>(Max) : Default;
}

/// Adds the standard observability metrics every bench row reports.
inline void addCommonMetrics(BenchJsonWriter &Json, const RunOutcome &Run) {
  Json.addMetric("pause_p50_ms", Run.Pauses.P50Ms, "ms");
  Json.addMetric("pause_p95_ms", Run.Pauses.P95Ms, "ms");
  Json.addMetric("pause_p99_ms", Run.Pauses.P99Ms, "ms");
  Json.addMetric("pause_max_ms", Run.Pauses.MaxMs, "ms");
  Json.addMetric("pause_avg_ms", Run.Agg.AvgPauseMs, "ms");
  Json.addMetric("mark_avg_ms", Run.Agg.AvgMarkMs, "ms");
  Json.addMetric("sweep_avg_ms", Run.Agg.AvgSweepMs, "ms");
  Json.addMetric("throughput_per_s", Run.Workload.throughput(), "per_s");
  Json.addMetric("gc_cycles_count",
                 static_cast<double>(Run.Agg.NumCycles), "count");
  Json.addMetric("k_actual_ratio", Run.KActualAvg, "ratio");
  Json.addMetric("floating_garbage_ratio", Run.FloatingGarbageFrac, "ratio");
  Json.addMetric("dropped_events_count",
                 static_cast<double>(Run.DroppedEvents), "count");
  Json.addMetric("stw_entry_p50_ms", Run.StwEntry.P50Ms, "ms");
  Json.addMetric("stw_entry_p99_ms", Run.StwEntry.P99Ms, "ms");
  Json.addMetric("stw_entry_max_ms", Run.StwEntry.MaxMs, "ms");
  Json.addMetric("fence_handshake_p50_ms", Run.FenceHandshake.P50Ms, "ms");
  Json.addMetric("fence_handshake_p99_ms", Run.FenceHandshake.P99Ms, "ms");
  Json.addMetric("fence_handshake_max_ms", Run.FenceHandshake.MaxMs, "ms");
  Json.addMetric("fence_handshake_count",
                 static_cast<double>(Run.FenceHandshake.Samples), "count");
  Json.addMetric("stw_stall_warnings_count",
                 static_cast<double>(Run.StwStallWarnings), "count");
  Json.addMetric("fence_timeouts_count",
                 static_cast<double>(Run.FenceTimeouts), "count");
}

/// Writes `BENCH_<name>.json` into CGC_BENCH_OUT_DIR (default ".") and
/// reports the result on stdout.
inline void emitBenchJson(const BenchJsonWriter &Json) {
  const char *Dir = std::getenv("CGC_BENCH_OUT_DIR");
  std::string Path = Json.writeFile(Dir && *Dir ? Dir : ".");
  if (Path.empty())
    std::fprintf(stderr, "bench json: WRITE FAILED\n");
  else
    std::printf("\nbench json: %s\n", Path.c_str());
}

/// Warehouse config sized for ~\p Occupancy of \p Options' heap.
inline WarehouseConfig warehouseFor(const GcOptions &Options,
                                    unsigned Threads, uint64_t Millis,
                                    double Occupancy = 0.6) {
  WarehouseConfig Config;
  Config.Threads = Threads;
  Config.DurationMs = Millis;
  Config.sizeLiveSet(
      static_cast<size_t>(Occupancy * static_cast<double>(Options.HeapBytes)));
  return Config;
}

/// Prints the standard bench banner.
inline void banner(const char *Title, const char *PaperRef) {
  std::printf("== %s ==\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("host note: single-core reproduction host; shapes (who "
              "wins, ratios), not absolute ms, are the comparison.\n\n");
}

} // namespace cgc::bench

#endif // CGC_BENCH_BENCHUTIL_H
