//===- table1_tracing_rates.cpp - Table 1 reproduction ---------------------------//
///
/// Table 1 of the paper: SPECjbb at 8 warehouses, varying the tracing
/// rate (TR 1, 4, 8, 10) against the STW baseline. Rows: throughput,
/// floating garbage (occupancy after GC vs the STW baseline), average
/// final (stop-the-world) card cleaning, average and max pause time.
/// Expected shapes: higher tracing rates -> less floating garbage, fewer
/// cards cleaned in the pause, shorter pauses, better throughput; TR 1
/// is the worst on all counts.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Table 1: the effects of different tracing rates",
         "Table 1 (Section 6.2), SPECjbb at 8 warehouses, 256 MB heap in "
         "the paper; scaled to a 48 MB heap here");

  constexpr size_t HeapBytes = 48u << 20;
  const uint64_t Millis = benchMillis(5000);
  constexpr unsigned Warehouses = 8;

  GcOptions Stw;
  Stw.Kind = CollectorKind::StopTheWorld;
  Stw.HeapBytes = HeapBytes;
  WarehouseConfig Config = warehouseFor(Stw, Warehouses, Millis, 0.6);
  RunOutcome StwRun = runWarehouse(Stw, Config);
  double StwLive = StwRun.Agg.AvgLiveBytesAfter;

  const double Rates[] = {1.0, 4.0, 8.0, 10.0};
  const unsigned NumRates = benchMaxSeries(4);
  std::vector<RunOutcome> Runs;
  std::vector<double> UsedRates;
  for (double Rate : Rates) {
    if (UsedRates.size() >= NumRates)
      break;
    GcOptions Cgc = Stw;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.TracingRate = Rate;
    Cgc.BackgroundThreads = 1; // 1 per CPU, as in the paper's 4-on-4.
    Runs.push_back(runWarehouse(Cgc, Config));
    UsedRates.push_back(Rate);
  }

  std::vector<std::string> Headers{"Measurement", "STW"};
  for (double Rate : UsedRates)
    Headers.push_back("TR " + TablePrinter::num(Rate, 0));
  TablePrinter Table(Headers);
  auto row = [&](const char *Name, auto Fn, std::string StwCell) {
    std::vector<std::string> Cells{Name, std::move(StwCell)};
    for (const RunOutcome &Run : Runs)
      Cells.push_back(Fn(Run));
    Table.addRow(std::move(Cells));
  };

  row("Throughput (tx/s)",
      [](const RunOutcome &R) {
        return TablePrinter::num(R.Workload.throughput(), 0);
      },
      TablePrinter::num(StwRun.Workload.throughput(), 0));
  row("Floating Garbage",
      [&](const RunOutcome &R) {
        double Extra = (R.Agg.AvgLiveBytesAfter - StwLive) /
                       static_cast<double>(HeapBytes);
        return TablePrinter::percent(Extra < 0 ? 0 : Extra, 1);
      },
      "0.0%");
  row("Avg Final Card Cleaning (cards)",
      [](const RunOutcome &R) {
        return TablePrinter::num(R.Agg.AvgCardsCleanedFinal, 0);
      },
      "-");
  row("Average Pause Time (ms)",
      [](const RunOutcome &R) {
        return TablePrinter::num(R.Agg.AvgPauseMs, 1);
      },
      TablePrinter::num(StwRun.Agg.AvgPauseMs, 1));
  row("Max Pause Time (ms)",
      [](const RunOutcome &R) {
        return TablePrinter::num(R.Agg.MaxPauseMs, 1);
      },
      TablePrinter::num(StwRun.Agg.MaxPauseMs, 1));
  row("GC cycles",
      [](const RunOutcome &R) {
        return TablePrinter::num(static_cast<uint64_t>(R.Agg.NumCycles));
      },
      TablePrinter::num(static_cast<uint64_t>(StwRun.Agg.NumCycles)));
  Table.print();

  BenchJsonWriter Json("table1");
  auto emitRow = [&](const std::string &Label, double Rate,
                     const RunOutcome &Run) {
    Json.beginRow(Label);
    Json.addConfig("warehouses", Warehouses);
    Json.addConfig("heap_mb", static_cast<double>(HeapBytes >> 20));
    Json.addConfig("duration_ms", static_cast<double>(Millis));
    Json.addConfig("tracing_rate", Rate); // 0 = STW baseline.
    addCommonMetrics(Json, Run);
    double Extra = (Run.Agg.AvgLiveBytesAfter - StwLive) /
                   static_cast<double>(HeapBytes);
    Json.addMetric("floating_garbage_vs_stw_ratio", Extra < 0 ? 0 : Extra,
                   "ratio");
    Json.addMetric("final_cards_cleaned_count", Run.Agg.AvgCardsCleanedFinal,
                   "count");
  };
  emitRow("stw", 0, StwRun);
  for (size_t I = 0; I < Runs.size(); ++I)
    emitRow("tr=" + TablePrinter::num(UsedRates[I], 0), UsedRates[I],
            Runs[I]);
  emitBenchJson(Json);

  std::printf("\nexpected shape (paper): floating garbage 18%% -> 4.2%% and "
              "final card cleaning 93627 -> 8394 as TR goes 1 -> 10; "
              "pauses shrink with higher TR; every TR beats STW pauses.\n");
  return 0;
}
