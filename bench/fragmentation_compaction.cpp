//===- fragmentation_compaction.cpp - parallel evacuation scaling --------------//
///
/// Section 2.3's incremental compaction, isolated from the collector:
/// a deliberately shredded area (alternating live object / small free
/// range) is scored, selected and evacuated by the compactor directly,
/// across a sweep of worker-pool sizes. Reports the arm (scoring) cost
/// and the evacuation wall time / throughput per worker count — the
/// scaling shape of the parallel pin-scan / target-selection / fixup /
/// copy phases, without workload noise.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "gc/Compactor.h"
#include "gc/WorkerPool.h"
#include "mutator/ThreadRegistry.h"
#include "support/Timing.h"
#include "workpackets/PacketPool.h"

#include <vector>

using namespace cgc;
using namespace cgc::bench;

namespace {

constexpr size_t HeapBytes = 32u << 20;
constexpr size_t AreaBytes = 4u << 20;
constexpr unsigned NumShards = 8;
/// Area layout: one 2 KB live object every 4 KB, the gaps free — half
/// the area is live, its free half shredded into 1024 ranges.
constexpr size_t MoverStride = 4096;
constexpr size_t MoverSize = 2048;
constexpr size_t NumMovers = AreaBytes / MoverStride;
constexpr unsigned NumPins = 16;

struct RepOutcome {
  Compactor::Stats S;
  double ArmMs = 0;
  double EvacMs = 0;
};

RepOutcome runOnce(WorkerPool &Workers) {
  HeapSpace Heap(HeapBytes, NumShards);
  Compactor Compact(Heap, AreaBytes);
  PacketPool Pool{8};
  ThreadRegistry Registry;
  MutatorContext Ctx(Pool);
  Registry.attach(&Ctx);
  Ctx.reserveRoots(NumPins);
  Heap.freeList().clear();

  // The fragmented candidate: area 0, alternating live / free.
  std::vector<Object *> Movers;
  Movers.reserve(NumMovers);
  for (size_t I = 0; I < NumMovers; ++I) {
    Object *M = reinterpret_cast<Object *>(Heap.base() + I * MoverStride);
    M->initialize(MoverSize, 1, static_cast<uint16_t>(I & 0x7fff));
    Heap.allocBits().set(M);
    Heap.markBits().set(M);
    Heap.freeList().addRange(Heap.base() + I * MoverStride + MoverSize,
                             MoverStride - MoverSize);
    Movers.push_back(M);
  }
  // One holder per mover in a strip past the area (off the free list),
  // each with a recorded slot, so fixup has real work.
  std::vector<Object *> Holders;
  Holders.reserve(NumMovers);
  for (size_t I = 0; I < NumMovers; ++I) {
    Object *H = reinterpret_cast<Object *>(Heap.base() + AreaBytes + I * 64);
    H->initialize(static_cast<uint32_t>(Object::requiredSize(16, 1)), 1,
                  9999);
    Heap.allocBits().set(H);
    Heap.markBits().set(H);
    H->storeRefRaw(0, Movers[I]);
    Holders.push_back(H);
  }
  // Contiguous target space beyond the holder strip: scores far below
  // the shredded area, and supplies the evacuation targets.
  Heap.freeList().addRange(Heap.base() + AreaBytes + (1u << 20),
                           HeapBytes - AreaBytes - (1u << 20));
  // A few conservative stack pins, as a real pause would see.
  for (unsigned I = 0; I < NumPins; ++I)
    Ctx.setRoot(I, Movers[I * 37]);

  RepOutcome Out;
  Stopwatch ArmTimer;
  Compact.armForCycle();
  Out.ArmMs = static_cast<double>(ArmTimer.elapsedNanos()) / 1e6;
  auto [Lo, Hi] = Compact.area();
  if (Lo != Heap.base() || Hi != Heap.base() + AreaBytes)
    std::fprintf(stderr, "policy picked an unexpected area\n");

  for (Object *H : Holders)
    Compact.recordSlot(H, 0);

  Stopwatch EvacTimer;
  Out.S = Compact.evacuate(Registry, &Workers);
  Out.EvacMs = static_cast<double>(EvacTimer.elapsedNanos()) / 1e6;
  Registry.detach(&Ctx);
  return Out;
}

} // namespace

int main() {
  banner("Fragmentation-guided parallel compaction",
         "Section 2.3 (incremental area compaction; evacuation "
         "parallelized on the STW worker pool)");

  std::vector<unsigned> WorkerCounts = {0, 1, 2, 4};
  unsigned Series =
      benchMaxSeries(static_cast<unsigned>(WorkerCounts.size()));
  WorkerCounts.resize(Series);
  uint64_t PerSeriesMs = benchMillis(2000) / Series;

  BenchJsonWriter Json("fragcompact");
  TablePrinter Table({"workers", "arm ms", "evac ms", "evac MB/s",
                      "evacuated MB", "pinned", "failed", "slots fixed"});

  for (unsigned W : WorkerCounts) {
    WorkerPool Workers(W);
    double ArmMsSum = 0, EvacMsSum = 0;
    uint64_t EvacBytesSum = 0, Pinned = 0, Failed = 0, SlotsFixed = 0;
    uint64_t AreasScored = 0, Reps = 0;
    Stopwatch SeriesTimer;
    while (Reps < 2 ||
           SeriesTimer.elapsedNanos() < PerSeriesMs * 1000 * 1000) {
      RepOutcome R = runOnce(Workers);
      ArmMsSum += R.ArmMs;
      EvacMsSum += R.EvacMs;
      EvacBytesSum += R.S.EvacuatedBytes;
      Pinned += R.S.PinnedObjects;
      Failed += R.S.FailedObjects;
      SlotsFixed += R.S.SlotsFixed;
      AreasScored = R.S.AreasScored;
      ++Reps;
    }
    double RepsD = static_cast<double>(Reps);
    double EvacMb =
        static_cast<double>(EvacBytesSum) / RepsD / (1024.0 * 1024.0);
    double MbPerS = EvacMsSum > 0
                        ? static_cast<double>(EvacBytesSum) /
                              (1024.0 * 1024.0) / (EvacMsSum / 1000.0)
                        : 0;

    std::string Label = "workers=" + std::to_string(W);
    Json.beginRow(Label);
    Json.addConfig("workers", W);
    Json.addConfig("heap_mb", static_cast<double>(HeapBytes >> 20));
    Json.addConfig("area_mb", static_cast<double>(AreaBytes >> 20));
    Json.addConfig("movers", static_cast<double>(NumMovers));
    Json.addMetric("arm_avg_ms", ArmMsSum / RepsD, "ms");
    Json.addMetric("evac_avg_ms", EvacMsSum / RepsD, "ms");
    Json.addMetric("evac_throughput_mb_per_s", MbPerS, "per_s");
    Json.addMetric("evacuated_mb", EvacMb, "mb");
    Json.addMetric("pinned_count",
                   static_cast<double>(Pinned) / RepsD, "count");
    Json.addMetric("failed_count",
                   static_cast<double>(Failed) / RepsD, "count");
    Json.addMetric("slots_fixed_count",
                   static_cast<double>(SlotsFixed) / RepsD, "count");
    Json.addMetric("areas_scored_count",
                   static_cast<double>(AreasScored), "count");
    Json.addMetric("reps_count", RepsD, "count");

    Table.addRow({Label, TablePrinter::num(ArmMsSum / RepsD, 3),
                  TablePrinter::num(EvacMsSum / RepsD, 3),
                  TablePrinter::num(MbPerS, 0), TablePrinter::num(EvacMb, 2),
                  TablePrinter::num(static_cast<double>(Pinned) / RepsD, 0),
                  TablePrinter::num(static_cast<double>(Failed) / RepsD, 0),
                  TablePrinter::num(
                      static_cast<double>(SlotsFixed) / RepsD, 0)});
  }

  Table.print();
  std::printf("\nexpected shape: evacuation wall time drops as workers are "
              "added (pin scan, target selection, fixup and copy all "
              "partition); arm cost stays flat — scoring reads only "
              "per-shard statistics.\n");
  emitBenchJson(Json);
  return 0;
}
