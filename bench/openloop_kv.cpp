//===- openloop_kv.cpp - Open-loop KV request-latency SLO sweep ---------------//
///
/// The server-workload claim of the paper (Section 1: "garbage collection
/// technology for a server environment ... short pause times"): what
/// request latency does a memcache-like KV service see under STW vs
/// concurrent collection, measured the honest way? An OPEN-LOOP driver
/// offers load on an exponential schedule decoupled from completions, so
/// a GC pause charges every request it delays from its *scheduled* start
/// (coordinated omission accounted — DESIGN.md §15). The sweep raises
/// offered load across collector/pacer configs and reports, per config,
/// the max sustainable load under a p99 SLO (default 1 ms, override
/// CGC_BENCH_SLO_P99_US).
///
/// Expected shape: STW sustains less load under the SLO — its pauses put
/// whole bursts of scheduled requests over budget — while CGC's request
/// p99 stays near the service time; earlier kickoff (KickoffHeadroom > 1)
/// buys tail headroom at some throughput cost.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "workloads/KvServer.h"
#include "workloads/OpenLoop.h"

#include <memory>

using namespace cgc;
using namespace cgc::bench;

namespace {

struct SweepConfig {
  const char *Name;
  CollectorKind Kind;
  double TracingRate;
  double KickoffHeadroom;
};

struct RunRow {
  double OfferedPerSec = 0;
  double AchievedPerSec = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double P999Ms = 0;
  double MaxMs = 0;
  RequestCounters::Snapshot Counters;
};

/// One open-loop run of the KV service on a fresh heap.
RunRow runOne(const SweepConfig &Sweep, double OfferedPerSec, uint64_t Millis,
              BenchJsonWriter &Json) {
  GcOptions Opts;
  Opts.Kind = Sweep.Kind;
  Opts.HeapBytes = 48u << 20;
  Opts.Observe = true;
  Opts.TracingRate = Sweep.TracingRate;
  Opts.KickoffHeadroom = Sweep.KickoffHeadroom;
  Opts.BackgroundThreads = Sweep.Kind == CollectorKind::MostlyConcurrent;
  auto Heap = GcHeap::create(Opts);

  KvWorkloadConfig Kv;
  Kv.KeySpace = 32768;
  Kv.MinValueBytes = 32;
  Kv.MaxValueBytes = 512;
  Kv.Store.Buckets = 2048;
  Kv.Store.MaxEntries = 16384;

  MutatorContext &OwnerCtx = Heap->attachThread();
  OwnerCtx.reserveRoots(1);
  RunRow Row;
  {
    KvStore Store(*Heap, OwnerCtx, /*OwnerRootSlot=*/0, Kv.Store);

    // Prewarm to the live-set bound so the measured window churns a
    // steady-state table instead of growing one.
    Random Warm(0xbeefcafe);
    char Key[64];
    for (size_t I = 0; I < Kv.Store.MaxEntries; ++I) {
      int Len = std::snprintf(Key, sizeof(Key), "key-%08zx",
                              static_cast<size_t>(Warm.nextBelow(Kv.KeySpace)));
      Store.set(OwnerCtx, Key, static_cast<size_t>(Len),
                Warm.nextInRange(Kv.MinValueBytes, Kv.MaxValueBytes),
                Warm.next());
    }

    OpenLoopConfig Load;
    Load.Clients = 2;
    Load.OfferedPerSec = OfferedPerSec;
    Load.Kind = ArrivalKind::Exponential;
    Load.DurationMs = Millis;
    Load.Seed = 0x051007 + static_cast<uint64_t>(OfferedPerSec);

    // Per-client request streams (clients index their own PRNG).
    std::vector<Random> Rngs;
    for (unsigned I = 0; I < Load.Clients; ++I)
      Rngs.emplace_back(Load.Seed * 31 + I);

    OpenLoopDriver Driver(Heap.get(), Load);
    Heap->enterIdle(OwnerCtx);
    OpenLoopOutcome Out = Driver.run(
        [&](MutatorContext *Ctx, unsigned Client, uint64_t) {
          return kvServeOne(*Heap, *Ctx, Store, Kv, Rngs[Client]);
        });
    Heap->exitIdle(OwnerCtx);

    GcObserver &Obs = Heap->core().Obs;
    Out.drainInto(Obs.metrics());
    const PauseHistogram &Lat =
        Obs.metrics().histogram(PauseMetric::RequestLatency);

    Row.OfferedPerSec = Out.OfferedPerSec;
    Row.AchievedPerSec = Out.AchievedPerSec;
    Row.P50Ms = static_cast<double>(Lat.quantile(0.50)) / 1e6;
    Row.P99Ms = static_cast<double>(Lat.quantile(0.99)) / 1e6;
    Row.P999Ms = static_cast<double>(Lat.quantile(0.999)) / 1e6;
    Row.MaxMs = static_cast<double>(Lat.max()) / 1e6;
    Row.Counters = Out.Counters;

    std::string IntegrityError;
    if (!Store.verifyAll(&IntegrityError))
      std::fprintf(stderr, "INTEGRITY FAILURE (%s, offered=%g/s): %s\n",
                   Sweep.Name, OfferedPerSec, IntegrityError.c_str());

    // The JSON row: request quantiles + load accounting + the standard
    // GC observability metrics.
    RunOutcome Gc;
    Gc.Workload.Transactions = Row.Counters.Completed;
    Gc.Workload.DurationMs = Out.DurationMs;
    Gc.Cycles = Heap->stats().snapshot();
    Gc.Agg = GcAggregates::compute(Gc.Cycles);
    Gc.Pool = Heap->core().Pool.stats();
    Gc.HeapBytes = Heap->core().Heap.sizeBytes();
    detail::harvestObservability(*Heap, Gc);

    Json.beginRow(std::string("offered=") +
                  std::to_string(static_cast<uint64_t>(OfferedPerSec)) +
                  ",collector=" + Sweep.Name);
    Json.addConfig("offered_per_s", OfferedPerSec);
    Json.addConfig("clients", Load.Clients);
    Json.addConfig("heap_mb", static_cast<double>(Opts.HeapBytes >> 20));
    Json.addConfig("duration_ms", static_cast<double>(Millis));
    Json.addConfig("tracing_rate", Sweep.TracingRate);
    Json.addConfig("kickoff_headroom", Sweep.KickoffHeadroom);
    Json.addConfig("concurrent",
                   Sweep.Kind == CollectorKind::MostlyConcurrent ? 1 : 0);
    Json.addMetric("req_p50_ms", Row.P50Ms, "ms");
    Json.addMetric("req_p99_ms", Row.P99Ms, "ms");
    Json.addMetric("req_p999_ms", Row.P999Ms, "ms");
    Json.addMetric("req_max_ms", Row.MaxMs, "ms");
    Json.addMetric("achieved_per_s", Row.AchievedPerSec, "per_s");
    Json.addMetric("scheduled_count",
                   static_cast<double>(Row.Counters.Scheduled), "count");
    Json.addMetric("late_start_count",
                   static_cast<double>(Row.Counters.LateStarts), "count");
    Json.addMetric("req_failed_count",
                   static_cast<double>(Row.Counters.Failed), "count");
    Json.addMetric("dropped_samples_count",
                   static_cast<double>(Row.Counters.DroppedSamples), "count");
    addCommonMetrics(Json, Gc);
  }
  OwnerCtx.setRoot(0, nullptr);
  Heap->detachThread(OwnerCtx);
  return Row;
}

} // namespace

int main() {
  banner("Open-loop KV: request latency vs offered load, SLO sweep",
         "Section 1/6 server-latency claim; open-loop schedule per "
         "DESIGN.md §15 (coordinated omission accounted)");

  const uint64_t Millis = benchMillis(1500);
  const double SloP99Ms =
      static_cast<double>(envKnobU64("CGC_BENCH_SLO_P99_US", 1000)) / 1e3;

  constexpr double Loads[] = {2000, 5000, 10000, 20000};
  constexpr unsigned NumLoads = sizeof(Loads) / sizeof(Loads[0]);
  const unsigned Sweep = benchMaxSeries(NumLoads);

  const SweepConfig Configs[] = {
      {"stw", CollectorKind::StopTheWorld, 8.0, 1.0},
      {"cgc", CollectorKind::MostlyConcurrent, 8.0, 1.0},
      {"cgc-early", CollectorKind::MostlyConcurrent, 8.0, 2.0},
      {"cgc-k4", CollectorKind::MostlyConcurrent, 4.0, 1.0},
  };

  TablePrinter Table({"collector", "offered/s", "achieved/s", "p50 ms",
                      "p99 ms", "p99.9 ms", "max ms", "late"});
  BenchJsonWriter Json("openloop_kv");

  for (const SweepConfig &Config : Configs) {
    double MaxSustainable = 0;
    for (unsigned I = 0; I < Sweep; ++I) {
      RunRow Row = runOne(Config, Loads[I], Millis, Json);
      Table.addRow({Config.Name, TablePrinter::num(Row.OfferedPerSec, 0),
                    TablePrinter::num(Row.AchievedPerSec, 0),
                    TablePrinter::num(Row.P50Ms, 3),
                    TablePrinter::num(Row.P99Ms, 3),
                    TablePrinter::num(Row.P999Ms, 3),
                    TablePrinter::num(Row.MaxMs, 3),
                    TablePrinter::num(Row.Counters.LateStarts)});
      // Sustainable: tail under the SLO and the load actually absorbed
      // (an overloaded server "meets" any SLO on the requests it deigns
      // to finish — require 95% of offered throughput too).
      if (Row.P99Ms <= SloP99Ms &&
          Row.AchievedPerSec >= 0.95 * Row.OfferedPerSec &&
          Row.OfferedPerSec > MaxSustainable)
        MaxSustainable = Row.OfferedPerSec;
    }
    Json.beginRow(std::string("slo_summary,collector=") + Config.Name);
    Json.addConfig("slo_p99_ms", SloP99Ms);
    Json.addConfig("concurrent",
                   Config.Kind == CollectorKind::MostlyConcurrent ? 1 : 0);
    Json.addConfig("tracing_rate", Config.TracingRate);
    Json.addConfig("kickoff_headroom", Config.KickoffHeadroom);
    Json.addMetric("max_sustainable_per_s", MaxSustainable, "per_s");
  }

  Table.print();
  emitBenchJson(Json);
  std::printf("\nexpected shape: request p99 measured from scheduled starts; "
              "STW falls off the p99<%.3gms SLO at lower offered load than "
              "CGC;\nearlier kickoff (headroom 2.0) trades throughput for "
              "tail headroom.\n",
              SloP99Ms);
  return 0;
}
