//===- javac_uniprocessor.cpp - the paper's javac experiment ----------------------//
///
/// Section 6.1's uniprocessor experiment: javac (single-threaded, 25 MB
/// heap, ~70% occupancy) with a single background collector thread.
/// The paper: CGC max/avg pause 41/34 ms vs STW 167/138 ms, with a 12%
/// throughput reduction. This reproduction runs the toy-compiler
/// workload — a real expression compiler allocating its token lists,
/// ASTs and code objects on the GC heap. (This host is single-core, so
/// this is the one experiment reproduced in its native configuration.)
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("javac-like uniprocessor run",
         "Section 6.1 text: javac, 25 MB heap, 70% occupancy, one "
         "background collector thread");

  constexpr size_t HeapBytes = 25u << 20;
  constexpr uint64_t Millis = 8000;

  CompilerConfig Config;
  Config.Threads = 1;
  Config.DurationMs = Millis;
  // Retained units sized to roughly 70% occupancy.
  Config.RetainedUnits = 180000;
  Config.FunctionsPerUnit = 12;

  GcOptions Stw;
  Stw.Kind = CollectorKind::StopTheWorld;
  Stw.HeapBytes = HeapBytes;
  Stw.GcWorkerThreads = 0; // Uniprocessor.
  RunOutcome StwRun = runCompiler(Stw, Config);

  GcOptions Cgc = Stw;
  Cgc.Kind = CollectorKind::MostlyConcurrent;
  Cgc.BackgroundThreads = 1; // The paper's single background thread.
  RunOutcome CgcRun = runCompiler(Cgc, Config);

  TablePrinter Table({"collector", "max pause ms", "avg pause ms",
                      "units/s", "GCs"});
  Table.addRow({"STW", TablePrinter::num(StwRun.Agg.MaxPauseMs, 1),
                TablePrinter::num(StwRun.Agg.AvgPauseMs, 1),
                TablePrinter::num(StwRun.Workload.throughput(), 0),
                TablePrinter::num(static_cast<uint64_t>(
                    StwRun.Agg.NumCycles))});
  Table.addRow({"CGC", TablePrinter::num(CgcRun.Agg.MaxPauseMs, 1),
                TablePrinter::num(CgcRun.Agg.AvgPauseMs, 1),
                TablePrinter::num(CgcRun.Workload.throughput(), 0),
                TablePrinter::num(static_cast<uint64_t>(
                    CgcRun.Agg.NumCycles))});
  Table.print();

  if (StwRun.Agg.NumCycles && CgcRun.Agg.NumCycles)
    std::printf("\npause reduction: max %.0f%%, avg %.0f%%; throughput "
                "cost %.0f%% (paper: 41/34 ms vs 167/138 ms, -12%% "
                "throughput)\n",
                100.0 * (1 - CgcRun.Agg.MaxPauseMs / StwRun.Agg.MaxPauseMs),
                100.0 * (1 - CgcRun.Agg.AvgPauseMs / StwRun.Agg.AvgPauseMs),
                100.0 * (1 - CgcRun.Workload.throughput() /
                                 StwRun.Workload.throughput()));
  if (StwRun.Workload.IntegrityFailure || CgcRun.Workload.IntegrityFailure) {
    std::printf("INTEGRITY FAILURE: compiled code disagreed with the "
                "oracle\n");
    return 1;
  }
  return 0;
}
