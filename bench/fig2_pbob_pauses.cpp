//===- fig2_pbob_pauses.cpp - Figure 2 reproduction ------------------------------//
///
/// Figure 2 of the paper: pBOB in autoserver mode on a 2.5 GB heap,
/// 40..80 warehouses at 25 terminals each (up to 2000 threads), 3000
/// work packets. Scaled here: a 96 MB heap, warehouse levels sweeping
/// occupancy from ~57% to ~91%, several threads per warehouse level with
/// think time providing the idle processor time pBOB simulates.
///
/// Series: CGC max/avg pause + avg mark (and, extra, the STW baseline
/// for reference — the paper reports 4192 ms -> 657 ms total pause at
/// 2000 threads). Expected shapes: large pause reduction; average mark
/// time grows much slower than heap occupancy; sweep becomes a dominant
/// share of the remaining CGC pause.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Figure 2: pBOB-like pause times vs warehouses (large heap)",
         "Fig. 2 (Section 6.1), 2.5 GB heap / 4-way PowerPC in the "
         "paper; scaled to a 96 MB heap here");

  constexpr size_t HeapBytes = 96u << 20;
  const uint64_t Millis = benchMillis(4000);
  // Occupancy sweep mirroring the paper's 40..80 warehouses (57%..91%).
  struct Level {
    unsigned Warehouses;
    double Occupancy;
  };
  const Level Levels[] = {{40, 0.57}, {50, 0.65}, {60, 0.74},
                          {70, 0.83}, {80, 0.91}};
  const unsigned NumLevels = benchMaxSeries(5);

  TablePrinter Table({"warehouses", "occupancy", "CGC max", "CGC avg",
                      "CGC mark avg", "CGC sweep avg", "sweep share",
                      "STW avg"});
  BenchJsonWriter Json("fig2");

  double FirstMark = 0, LastMark = 0, FirstOcc = 0, LastOcc = 0;
  unsigned LevelIdx = 0;
  for (const Level &L : Levels) {
    if (LevelIdx++ >= NumLevels)
      break;
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapBytes;
    Cgc.NumWorkPackets = 3000;
    Cgc.BackgroundThreads = 1; // 1 per CPU, as in the paper's 4-on-4.
    WarehouseConfig Config = warehouseFor(Cgc, /*Threads=*/L.Warehouses / 4,
                                          Millis, L.Occupancy);
    Config.ThinkMicros = 60; // Autoserver think time (idle processor).
    RunOutcome CgcRun = runWarehouse(Cgc, Config);

    GcOptions Stw = Cgc;
    Stw.Kind = CollectorKind::StopTheWorld;
    RunOutcome StwRun = runWarehouse(Stw, Config);

    double SweepShare =
        CgcRun.Agg.AvgPauseMs > 0
            ? CgcRun.Agg.AvgSweepMs / CgcRun.Agg.AvgPauseMs
            : 0;
    Table.addRow(
        {TablePrinter::num(static_cast<uint64_t>(L.Warehouses)),
         TablePrinter::percent(L.Occupancy, 0),
         TablePrinter::num(CgcRun.Agg.MaxPauseMs, 1),
         TablePrinter::num(CgcRun.Agg.AvgPauseMs, 1),
         TablePrinter::num(CgcRun.Agg.AvgMarkMs, 1),
         TablePrinter::num(CgcRun.Agg.AvgSweepMs, 1),
         TablePrinter::percent(SweepShare, 0),
         TablePrinter::num(StwRun.Agg.AvgPauseMs, 1)});

    auto emitRow = [&](const char *Collector, const RunOutcome &Run) {
      Json.beginRow("warehouses=" + std::to_string(L.Warehouses) +
                    ",collector=" + Collector);
      Json.addConfig("warehouses", L.Warehouses);
      Json.addConfig("occupancy", L.Occupancy);
      Json.addConfig("heap_mb", static_cast<double>(HeapBytes >> 20));
      Json.addConfig("duration_ms", static_cast<double>(Millis));
      Json.addConfig("concurrent", Collector[0] == 'c' ? 1 : 0);
      addCommonMetrics(Json, Run);
      Json.addMetric("sweep_share_ratio",
                     Run.Agg.AvgPauseMs > 0
                         ? Run.Agg.AvgSweepMs / Run.Agg.AvgPauseMs
                         : 0,
                     "ratio");
    };
    emitRow("cgc", CgcRun);
    emitRow("stw", StwRun);

    if (L.Warehouses == 40) { // 57% occupancy = the paper's "50" point.
      FirstMark = CgcRun.Agg.AvgMarkMs;
      FirstOcc = L.Occupancy;
    }
    if (L.Warehouses == 70) { // 83%: the highest level where cycles
      LastMark = CgcRun.Agg.AvgMarkMs; // still complete concurrently on
      LastOcc = L.Occupancy;           // this single-core host.
    }
  }
  Table.print();
  if (FirstMark > 0)
    std::printf("\n57%%->83%% occupancy points: occupancy +%.0f%%, CGC avg mark "
                "+%.0f%% (paper: +58%% occupancy, +35%% mark)\n",
                100.0 * (LastOcc / FirstOcc - 1),
                100.0 * (LastMark / FirstMark - 1));
  std::printf("expected shape: mark time grows much slower than occupancy; "
              "sweep is a large share of the remaining CGC pause "
              "(paper: 42%% at 80 warehouses).\n");
  emitBenchJson(Json);
  return 0;
}
