//===- table3_utilization.cpp - Table 3 reproduction ------------------------------//
///
/// Table 3 of the paper: mutator utilization while the concurrent
/// collector is active, per tracing rate. Utilization is the ratio of
/// the application allocation rate during the concurrent phase to the
/// rate during the pre-concurrent phase (the paper's proxy for MMU when
/// threads outnumber processors). Expected shape: utilization falls as
/// the tracing rate rises (paper: 78% at TR 1 down to 43% at TR 10;
/// ~47% at the default TR 8).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Table 3: mutator utilization during the concurrent phase",
         "Table 3 (Section 6.2), SPECjbb at 8 warehouses");

  // A larger heap than Table 1's so concurrent phases last long enough
  // for stable rate windows.
  constexpr size_t HeapBytes = 96u << 20;
  constexpr uint64_t Millis = 6000;
  constexpr double MinWindowMs = 4.0;

  TablePrinter Table({"Measurement", "TR 1", "TR 4", "TR 8", "TR 10"});
  std::vector<std::string> Pre{"pre-concurrent (KB/ms)"};
  std::vector<std::string> Conc{"concurrent (KB/ms)"};
  std::vector<std::string> Util{"utilization"};

  struct Row {
    double PreRate = 0, ConcRate = 0;
    bool NoPrePhase = false;
  };
  std::vector<Row> Rows;
  for (double Rate : {1.0, 4.0, 8.0, 10.0}) {
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapBytes;
    Cgc.TracingRate = Rate;
    Cgc.BackgroundThreads = 1; // 1 per CPU, as in the paper's 4-on-4.
    WarehouseConfig Config = warehouseFor(Cgc, 8, Millis, 0.6);
    RunOutcome Run = runWarehouse(Cgc, Config);

    // Per-cycle rates, using only cycles whose windows are long enough
    // for a stable rate (tiny windows at high tracing rates otherwise
    // produce meaningless spikes).
    double PreBytes = 0, PreMs = 0, ConcBytes = 0, ConcMs = 0;
    for (const CycleRecord &R : Run.Cycles) {
      if (!R.Concurrent)
        continue;
      if (R.PreConcurrentMs >= MinWindowMs) {
        PreBytes += static_cast<double>(R.BytesAllocatedPreConcurrent);
        PreMs += R.PreConcurrentMs;
      }
      if (R.ConcurrentPhaseMs >= MinWindowMs) {
        ConcBytes += static_cast<double>(R.BytesAllocatedConcurrent);
        ConcMs += R.ConcurrentPhaseMs;
      }
    }
    Row R;
    R.PreRate = PreMs > 0 ? PreBytes / 1024.0 / PreMs : 0;
    R.ConcRate = ConcMs > 0 ? ConcBytes / 1024.0 / ConcMs : 0;
    // TR 1 starts the concurrent phase immediately: no pre-concurrent
    // window worth measuring.
    R.NoPrePhase = PreMs <= 0 || R.PreRate < 0.01 * R.ConcRate;
    Rows.push_back(R);
  }

  // Paper footnote 6: where there is no pre-concurrent phase, use the
  // first measured pre-concurrent rate (TR 4's) as the basis.
  double FallbackPre = 0;
  for (const Row &R : Rows)
    if (!R.NoPrePhase && FallbackPre == 0)
      FallbackPre = R.PreRate;
  for (const Row &R : Rows) {
    Pre.push_back(R.NoPrePhase ? "-" : TablePrinter::num(R.PreRate, 1));
    Conc.push_back(TablePrinter::num(R.ConcRate, 1));
    double Basis = R.NoPrePhase ? FallbackPre : R.PreRate;
    Util.push_back(Basis > 0 ? TablePrinter::percent(R.ConcRate / Basis, 0)
                             : "-");
  }

  Table.addRow(Pre);
  Table.addRow(Conc);
  Table.addRow(Util);
  Table.print();
  std::printf("\nnote: at TR 1 the concurrent phase starts immediately "
              "after the pause (no pre-concurrent window); like the "
              "paper's footnote 6, the TR 4 pre-concurrent rate is the "
              "utilization basis there.\nexpected shape (paper): "
              "utilization 78%% / 63%% / 47%% / 43%% for TR 1/4/8/10.\n");
  return 0;
}
