//===- validate_bench_json.cpp - cgc-bench-v1 schema validator ----------------//
///
/// CI gate for machine-readable bench output: reads each BENCH_*.json
/// named on the command line and checks it against the cgc-bench-v1
/// schema (see observe/BenchJsonWriter.h). Exit status is the number of
/// invalid files, so `validate_bench_json BENCH_fig1.json` fails the
/// build exactly when the document is malformed.
///
//===----------------------------------------------------------------------===//

#include "observe/BenchJsonWriter.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_<name>.json...\n", Argv[0]);
    return 2;
  }
  int Invalid = 0;
  for (int I = 1; I < Argc; ++I) {
    std::ifstream In(Argv[I]);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open\n", Argv[I]);
      ++Invalid;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Error;
    if (cgc::validateBenchJson(Buf.str(), &Error)) {
      std::printf("%s: OK\n", Argv[I]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", Argv[I], Error.c_str());
      ++Invalid;
    }
  }
  return Invalid;
}
