//===- table2_metering.cpp - Table 2 reproduction --------------------------------//
///
/// Table 2 of the paper: effectiveness of the metering of concurrent
/// collection work as the tracing rate varies. Criteria (per cycle):
///  - CC Rate fails: cards cleaned concurrently / cleaned in the pause
///    should leave < 20% of the cleaning to the pause;
///  - Free Space fails: when the concurrent phase completes all its
///    work, > 5% of the heap still free is a failure (premature);
///  - Cards Left: cards the concurrent phase still had to clean when
///    halted by allocation failure (should be 0).
/// Expected shapes: Free Space failures only at TR 1; CC Rate failures
/// high at low tracing rates and dropping with TR.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Table 2: effectiveness of metering",
         "Table 2 (Section 6.2), SPECjbb at 8 warehouses");

  constexpr size_t HeapBytes = 48u << 20;
  constexpr uint64_t Millis = 5000;

  TablePrinter Table({"Criterion", "TR 1", "TR 4", "TR 8", "TR 10"});
  std::vector<std::string> CcFails{"CC Rate fails"};
  std::vector<std::string> FreeFails{"Free Space fails"};
  std::vector<std::string> CardsLeft{"Cards Left (avg)"};
  std::vector<std::string> Cycles{"cycles measured"};

  for (double Rate : {1.0, 4.0, 8.0, 10.0}) {
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapBytes;
    Cgc.TracingRate = Rate;
    Cgc.BackgroundThreads = 1; // 1 per CPU, as in the paper's 4-on-4.
    WarehouseConfig Config = warehouseFor(Cgc, 8, Millis, 0.6);
    RunOutcome Run = runWarehouse(Cgc, Config);

    size_t Concurrent = 0, CcFail = 0, FreeFail = 0;
    uint64_t LeftSum = 0;
    for (const CycleRecord &R : Run.Cycles) {
      if (!R.Concurrent)
        continue;
      ++Concurrent;
      uint64_t Total = R.CardsCleanedConcurrent + R.CardsCleanedFinal;
      // CC Rate: the pause's share of cleaning should stay under 20%.
      if (Total > 0 &&
          static_cast<double>(R.CardsCleanedFinal) /
                  static_cast<double>(Total) >
              0.20)
        ++CcFail;
      if (R.CompletedConcurrently &&
          static_cast<double>(R.FreeAtConcurrentCompletion) >
              0.05 * static_cast<double>(HeapBytes))
        ++FreeFail;
      LeftSum += R.CardsLeftAtFailure;
    }
    auto Pct = [&](size_t N) {
      return Concurrent
                 ? TablePrinter::percent(
                       static_cast<double>(N) / Concurrent, 0)
                 : std::string("-");
    };
    CcFails.push_back(Pct(CcFail));
    FreeFails.push_back(Pct(FreeFail));
    CardsLeft.push_back(
        Concurrent ? TablePrinter::num(
                         static_cast<double>(LeftSum) / Concurrent, 1)
                   : "-");
    Cycles.push_back(TablePrinter::num(static_cast<uint64_t>(Concurrent)));
  }

  Table.addRow(CcFails);
  Table.addRow(FreeFails);
  Table.addRow(CardsLeft);
  Table.addRow(Cycles);
  Table.print();
  std::printf("\nexpected shape (paper): Free Space fails 26.6%% at TR 1 "
              "and ~0 elsewhere; CC Rate fails drop 76%% -> 21%% as TR "
              "rises; Cards Left 0 everywhere.\n");
  return 0;
}
