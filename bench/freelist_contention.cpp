//===- freelist_contention.cpp - sharded free-list scalability -----------------//
//
// Measures the tentpole of the sharded free-space manager: multi-thread
// refill + sweep-insert throughput against the shard count. Each worker
// runs the two slow-path operations that used to serialize on the one
// global free-list lock:
//
//   refill       allocateUpTo(4 KB, 32 KB) with the worker's affine shard
//   sweep-insert addRange of the granted range back (what a sweep worker
//                does when it reclaims a dead run in that span)
//
// Workers have disjoint affinity (tid mod shards), so at 8 shards the
// eight workers touch eight different locks; at 1 shard they convoy on
// one, exactly like the legacy FreeList. Reported: million op-pairs/s
// per (shards, threads) cell and the speedup of each shard count over
// the 1-shard baseline at the same thread count.
//
// The second section moves up a layer: a full GcHeap small-object churn
// with FastPathSizeClasses off vs on (DESIGN.md §16), same workload and
// duration, reporting allocations/s, cycles per allocation, and — the
// number the fast path exists to shrink — shard-lock acquisitions per
// allocation. With the flag on, sweep-reclaimed small runs ride the
// lock-free remote-free queues back to their owner instead of paying a
// locked addRange each, and class refills drain those queues without
// touching the shard locks. Both sections land in one cgc-bench-v1
// document so the off/on contrast is a single-file read.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "heap/ShardedFreeList.h"
#include "support/TablePrinter.h"
#include "support/Timing.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

using namespace cgc;
using namespace cgc::bench;

namespace {

constexpr size_t RegionBytes = 64u << 20;
constexpr size_t RefillMin = 4u << 10;
constexpr size_t RefillMax = 32u << 10;

/// One (shards, threads) cell: op-pairs per second.
double runCell(uint8_t *Region, unsigned Shards, unsigned Threads,
               uint64_t RunMillis) {
  ShardedFreeList List(Region, RegionBytes, Shards);
  List.addRange(Region, RegionBytes);

  std::atomic<bool> Start{false}, Stop{false};
  std::vector<uint64_t> Ops(Threads, 0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      size_t Affine = T % List.numShards();
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      uint64_t Mine = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        size_t Granted = 0;
        uint8_t *P = List.allocateUpTo(RefillMin, RefillMax, Granted, Affine);
        if (P)
          List.addRange(P, Granted);
        ++Mine;
      }
      Ops[T] = Mine;
    });

  Stopwatch Timer;
  Start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(RunMillis));
  Stop.store(true, std::memory_order_relaxed);
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedMillis() / 1000.0;

  uint64_t Total = 0;
  for (uint64_t N : Ops)
    Total += N;
  return static_cast<double>(Total) / Seconds;
}

/// --- GcHeap section: FastPathSizeClasses off vs on ---------------------

struct GcCellResult {
  double AllocsPerSec = 0;
  double CostPerAlloc = 0;    // costClock units (cycles on x86-64)
  double LockAcqPerAlloc = 0; // shard-lock acquisitions per allocation
  uint64_t Cycles = 0;        // completed GC cycles during the run
};

/// Small-object churn with a rolling rooted window: survivors pepper
/// the heap so each sweep reclaims many sub-bin-threshold runs — the
/// fragmented steady state where the remote-free queues earn their
/// keep. Identical workload for both flag settings.
GcCellResult runGcCell(bool FastPath, unsigned Threads, uint64_t RunMillis) {
  GcOptions Opts;
  Opts.Kind = CollectorKind::StopTheWorld;
  Opts.HeapBytes = 32u << 20;
  Opts.FreeListShards = 8;
  Opts.BackgroundThreads = 0;
  Opts.FastPathSizeClasses = FastPath;
  auto Heap = GcHeap::create(Opts);

  const uint64_t LockBefore = Heap->core().Heap.freeList().lockAcquisitions();
  std::atomic<bool> Start{false}, Stop{false};
  std::vector<uint64_t> Allocs(Threads, 0), Cost(Threads, 0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      constexpr size_t NumRoots = 512;
      MutatorContext &Ctx = Heap->attachThread();
      Ctx.reserveRoots(NumRoots);
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      uint64_t Mine = 0;
      uint64_t C0 = costClock();
      while (!Stop.load(std::memory_order_relaxed)) {
        // 24..920 total bytes: inside the class table when the flag is
        // on, the ordinary bump path when it is off.
        size_t Payload = 16 + (Mine % 16) * 56;
        Object *Obj = Heap->allocate(Ctx, Payload, 0);
        if (Obj && (Mine & 3) == 0) // Every 4th survives one window.
          Ctx.setRoot((Mine >> 2) % NumRoots, Obj);
        ++Mine;
      }
      Cost[T] = costClock() - C0;
      Allocs[T] = Mine;
      Heap->detachThread(Ctx);
    });

  Stopwatch Timer;
  Start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(RunMillis));
  Stop.store(true, std::memory_order_relaxed);
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedMillis() / 1000.0;

  uint64_t TotalAllocs = 0, TotalCost = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    TotalAllocs += Allocs[T];
    TotalCost += Cost[T];
  }
  const uint64_t LockAfter = Heap->core().Heap.freeList().lockAcquisitions();

  GcCellResult R;
  if (TotalAllocs) {
    R.AllocsPerSec = static_cast<double>(TotalAllocs) / Seconds;
    R.CostPerAlloc =
        static_cast<double>(TotalCost) / static_cast<double>(TotalAllocs);
    R.LockAcqPerAlloc = static_cast<double>(LockAfter - LockBefore) /
                        static_cast<double>(TotalAllocs);
  }
  R.Cycles = Heap->completedCycles();
  return R;
}

} // namespace

int main() {
  const uint64_t RunMillis = benchMillis(250);
  std::printf("== free-list contention: refill + sweep-insert ==\n");
  std::printf("region %zu MB, refill %zu..%zu KB, %llu ms per cell; "
              "host has %u hardware thread(s).\n",
              RegionBytes >> 20, RefillMin >> 10, RefillMax >> 10,
              static_cast<unsigned long long>(RunMillis),
              std::thread::hardware_concurrency());
  std::printf("host note: single-core hosts show the convoy-avoidance "
              "effect only; the parallel win needs real cores.\n\n");

  uint8_t *Region =
      static_cast<uint8_t *>(std::aligned_alloc(4096, RegionBytes));
  if (!Region) {
    std::fprintf(stderr, "region allocation failed\n");
    return 1;
  }

  BenchJsonWriter Json("freelist_contention");

  const unsigned ShardCounts[] = {1, 2, 4, 8};
  const unsigned ThreadCounts[] = {1, 2, 4, 8};

  // Baseline row (1 shard) first so speedups can be reported per cell.
  double Baseline[9] = {0};

  TablePrinter Table({"shards", "1 thr Mops", "2 thr Mops", "4 thr Mops",
                      "8 thr Mops", "8 thr speedup vs 1 shard"});
  for (unsigned Shards : ShardCounts) {
    std::vector<std::string> Row{std::to_string(Shards)};
    double EightThr = 0;
    for (unsigned Threads : ThreadCounts) {
      double OpsPerSec = runCell(Region, Shards, Threads, RunMillis);
      if (Shards == 1)
        Baseline[Threads] = OpsPerSec;
      if (Threads == 8)
        EightThr = OpsPerSec;
      Row.push_back(TablePrinter::num(OpsPerSec / 1e6, 2));
      Json.beginRow("raw,shards=" + std::to_string(Shards) +
                    ",threads=" + std::to_string(Threads));
      Json.addConfig("shards", Shards);
      Json.addConfig("threads", Threads);
      Json.addMetric("op_pairs_per_s", OpsPerSec, "per_s");
    }
    Row.push_back(Baseline[8] > 0
                      ? TablePrinter::num(EightThr / Baseline[8], 2) + "x"
                      : "-");
    Table.addRow(Row);
  }
  Table.print();
  std::free(Region);

  // GcHeap churn: the same workload with the size-class fast path off
  // and on, in this order, in one document.
  std::printf("\n== GcHeap small-object churn: FastPathSizeClasses ==\n");
  const unsigned HwThreads = std::thread::hardware_concurrency();
  const unsigned GcThreads = HwThreads >= 4 ? 4 : (HwThreads ? HwThreads : 1);
  TablePrinter GcTable({"fastpath", "allocs/s", "cost/alloc",
                        "shard-lock acq/alloc", "gc cycles"});
  for (bool FastPath : {false, true}) {
    GcCellResult R = runGcCell(FastPath, GcThreads, RunMillis * 4);
    GcTable.addRow({FastPath ? "on" : "off",
                    TablePrinter::num(R.AllocsPerSec / 1e6, 2) + "M",
                    TablePrinter::num(R.CostPerAlloc, 1),
                    TablePrinter::num(R.LockAcqPerAlloc, 5),
                    TablePrinter::num(static_cast<double>(R.Cycles), 0)});
    Json.beginRow(std::string("gcheap,fastpath=") + (FastPath ? "1" : "0"));
    Json.addConfig("fastpath", FastPath ? 1 : 0);
    Json.addConfig("threads", GcThreads);
    Json.addConfig("heap_mb", 32);
    Json.addMetric("allocs_per_s", R.AllocsPerSec, "per_s");
    Json.addMetric("cycles_per_alloc", R.CostPerAlloc, costClockUnit());
    Json.addMetric("shard_lock_acquisitions_per_alloc", R.LockAcqPerAlloc,
                   "count");
    Json.addMetric("gc_cycles", static_cast<double>(R.Cycles), "count");
  }
  GcTable.print();

  emitBenchJson(Json);
  std::printf("\nexpected shape: shard-lock acquisitions per allocation drop "
              "measurably with the fast path on — sweep-reclaimed small runs "
              "ride the lock-free remote-free queues instead of locked "
              "addRange, and class refills drain them without the lock.\n");
  return 0;
}
