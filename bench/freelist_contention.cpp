//===- freelist_contention.cpp - sharded free-list scalability -----------------//
//
// Measures the tentpole of the sharded free-space manager: multi-thread
// refill + sweep-insert throughput against the shard count. Each worker
// runs the two slow-path operations that used to serialize on the one
// global free-list lock:
//
//   refill       allocateUpTo(4 KB, 32 KB) with the worker's affine shard
//   sweep-insert addRange of the granted range back (what a sweep worker
//                does when it reclaims a dead run in that span)
//
// Workers have disjoint affinity (tid mod shards), so at 8 shards the
// eight workers touch eight different locks; at 1 shard they convoy on
// one, exactly like the legacy FreeList. Reported: million op-pairs/s
// per (shards, threads) cell and the speedup of each shard count over
// the 1-shard baseline at the same thread count.
//
//===----------------------------------------------------------------------===//

#include "heap/ShardedFreeList.h"
#include "support/TablePrinter.h"
#include "support/Timing.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

using namespace cgc;

namespace {

constexpr size_t RegionBytes = 64u << 20;
constexpr size_t RefillMin = 4u << 10;
constexpr size_t RefillMax = 32u << 10;
constexpr uint64_t RunMillis = 250;

/// One (shards, threads) cell: op-pairs per second.
double runCell(uint8_t *Region, unsigned Shards, unsigned Threads) {
  ShardedFreeList List(Region, RegionBytes, Shards);
  List.addRange(Region, RegionBytes);

  std::atomic<bool> Start{false}, Stop{false};
  std::vector<uint64_t> Ops(Threads, 0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      size_t Affine = T % List.numShards();
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      uint64_t Mine = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        size_t Granted = 0;
        uint8_t *P = List.allocateUpTo(RefillMin, RefillMax, Granted, Affine);
        if (P)
          List.addRange(P, Granted);
        ++Mine;
      }
      Ops[T] = Mine;
    });

  Stopwatch Timer;
  Start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(RunMillis));
  Stop.store(true, std::memory_order_relaxed);
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedMillis() / 1000.0;

  uint64_t Total = 0;
  for (uint64_t N : Ops)
    Total += N;
  return static_cast<double>(Total) / Seconds;
}

} // namespace

int main() {
  std::printf("== free-list contention: refill + sweep-insert ==\n");
  std::printf("region %zu MB, refill %zu..%zu KB, %llu ms per cell; "
              "host has %u hardware thread(s).\n",
              RegionBytes >> 20, RefillMin >> 10, RefillMax >> 10,
              static_cast<unsigned long long>(RunMillis),
              std::thread::hardware_concurrency());
  std::printf("host note: single-core hosts show the convoy-avoidance "
              "effect only; the parallel win needs real cores.\n\n");

  uint8_t *Region =
      static_cast<uint8_t *>(std::aligned_alloc(4096, RegionBytes));
  if (!Region) {
    std::fprintf(stderr, "region allocation failed\n");
    return 1;
  }

  const unsigned ShardCounts[] = {1, 2, 4, 8};
  const unsigned ThreadCounts[] = {1, 2, 4, 8};

  // Baseline row (1 shard) first so speedups can be reported per cell.
  double Baseline[9] = {0};

  TablePrinter Table({"shards", "1 thr Mops", "2 thr Mops", "4 thr Mops",
                      "8 thr Mops", "8 thr speedup vs 1 shard"});
  for (unsigned Shards : ShardCounts) {
    std::vector<std::string> Row{std::to_string(Shards)};
    double EightThr = 0;
    for (unsigned Threads : ThreadCounts) {
      double OpsPerSec = runCell(Region, Shards, Threads);
      if (Shards == 1)
        Baseline[Threads] = OpsPerSec;
      if (Threads == 8)
        EightThr = OpsPerSec;
      Row.push_back(TablePrinter::num(OpsPerSec / 1e6, 2));
    }
    Row.push_back(Baseline[8] > 0
                      ? TablePrinter::num(EightThr / Baseline[8], 2) + "x"
                      : "-");
    Table.addRow(Row);
  }
  Table.print();

  std::free(Region);
  return 0;
}
