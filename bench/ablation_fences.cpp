//===- ablation_fences.cpp - Section 5's fence-batching claim ---------------------//
///
/// Section 5: a straightforward weak-ordering implementation needs a
/// fence per object allocation, per write barrier and per object traced;
/// the paper's design needs one per allocation-cache flush, one per
/// published packet, one per tracer batch, and a handful for card-table
/// handshakes. This harness runs the same workload with both accounting
/// schemes enabled and reports fences per MB allocated — reproducing the
/// "significantly fewer fences" claim quantitatively.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Fences.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Fence batching vs the naive per-operation scheme",
         "Section 5 (weak ordering issues)");

  GcOptions Cgc;
  Cgc.Kind = CollectorKind::MostlyConcurrent;
  Cgc.HeapBytes = 48u << 20;
  Cgc.NaiveFenceAccounting = true; // Count what the naive scheme would do.
  WarehouseConfig Config = warehouseFor(Cgc, 6, 2500, 0.6);

  fenceCounters().reset();
  RunOutcome Run = runWarehouse(Cgc, Config);
  const FenceCounters &Counters = fenceCounters();

  double AllocMb =
      static_cast<double>(Run.Workload.BytesAllocated) / (1 << 20);

  TablePrinter Table({"fence site", "count", "per MB allocated"});
  auto row = [&](FenceSite Site) {
    uint64_t Count = Counters.count(Site);
    Table.addRow({fenceSiteName(Site), TablePrinter::num(Count),
                  TablePrinter::num(
                      AllocMb > 0 ? static_cast<double>(Count) / AllocMb : 0,
                      1)});
  };
  row(FenceSite::AllocCacheFlush);
  row(FenceSite::TracerBatch);
  row(FenceSite::PacketPublish);
  row(FenceSite::CardTableHandshake);
  row(FenceSite::StopTheWorld);
  Table.addRow({"TOTAL (batched design)",
                TablePrinter::num(Counters.totalRealFences()),
                TablePrinter::num(
                    static_cast<double>(Counters.totalRealFences()) / AllocMb,
                    1)});
  row(FenceSite::NaivePerObjectAlloc);
  row(FenceSite::NaivePerWriteBarrier);
  row(FenceSite::NaivePerObjectTrace);
  Table.addRow({"TOTAL (naive design)",
                TablePrinter::num(Counters.totalNaiveFences()),
                TablePrinter::num(
                    static_cast<double>(Counters.totalNaiveFences()) /
                        AllocMb,
                    1)});
  Table.print();

  double Ratio = Counters.totalRealFences() > 0
                     ? static_cast<double>(Counters.totalNaiveFences()) /
                           static_cast<double>(Counters.totalRealFences())
                     : 0;
  std::printf("\nbatched design issues %.0fx fewer fences than the naive "
              "per-operation scheme on this run.\n", Ratio);
  return 0;
}
