//===- ablation_lazy_sweep.cpp - Section 7's first future-work item ---------------//
///
/// The paper's pause analysis (Fig. 2 discussion and Section 7) finds
/// sweep to be a dominant share of the remaining CGC pause (42% at 80
/// warehouses) and proposes lazy sweep: defer sweeping out of the pause
/// and spread it between mutators at allocation time. This ablation runs
/// the same workload with eager vs lazy sweep and reports the pause
/// decomposition — the expected shape is the sweep share vanishing from
/// the pause with little throughput change.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Lazy sweep ablation",
         "Section 7 future work; Fig. 2 discussion (sweep = 42% of the "
         "remaining pause)");

  constexpr size_t HeapBytes = 64u << 20;
  constexpr uint64_t Millis = 2500;

  TablePrinter Table({"sweep mode", "max pause ms", "avg pause ms",
                      "avg mark ms", "avg sweep ms", "sweep share",
                      "tx/s", "GCs"});

  for (bool Lazy : {false, true}) {
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapBytes;
    Cgc.LazySweep = Lazy;
    WarehouseConfig Config = warehouseFor(Cgc, 6, Millis, 0.7);
    RunOutcome Run = runWarehouse(Cgc, Config);
    double Share = Run.Agg.AvgPauseMs > 0
                       ? Run.Agg.AvgSweepMs / Run.Agg.AvgPauseMs
                       : 0;
    Table.addRow({Lazy ? "lazy" : "eager",
                  TablePrinter::num(Run.Agg.MaxPauseMs, 2),
                  TablePrinter::num(Run.Agg.AvgPauseMs, 2),
                  TablePrinter::num(Run.Agg.AvgMarkMs, 2),
                  TablePrinter::num(Run.Agg.AvgSweepMs, 2),
                  TablePrinter::percent(Share, 0),
                  TablePrinter::num(Run.Workload.throughput(), 0),
                  TablePrinter::num(
                      static_cast<uint64_t>(Run.Agg.NumCycles))});
  }
  Table.print();
  std::printf("\nexpected shape: the sweep component (a large share of "
              "the eager pause) disappears from the lazy pause.\n");
  return 0;
}
