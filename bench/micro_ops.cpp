//===- micro_ops.cpp - micro-operation costs (google-benchmark) -------------------//
///
/// Costs of the collector's hot operations: the allocation fast path,
/// the fence-free card-marking write barrier, allocation-bit flushing,
/// mark-bit test-and-set, and work-packet get/put. These are the
/// per-operation overheads the paper's design minimizes (Sections 1.1
/// and 5): the write barrier is two plain stores; the allocation fast
/// path is a bump pointer; fences are batched out of both.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "runtime/GcHeap.h"

#include <benchmark/benchmark.h>

using namespace cgc;
using namespace cgc::bench;

namespace {

GcOptions microOptions(CollectorKind Kind) {
  GcOptions Opts;
  Opts.Kind = Kind;
  Opts.HeapBytes = 64u << 20;
  Opts.BackgroundThreads = 0;
  return Opts;
}

void BM_AllocateSmall(benchmark::State &State) {
  auto Heap = GcHeap::create(microOptions(CollectorKind::MostlyConcurrent));
  MutatorContext &Ctx = Heap->attachThread();
  for (auto _ : State) {
    Object *Obj = Heap->allocate(Ctx, 32, 2);
    benchmark::DoNotOptimize(Obj);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          Object::requiredSize(32, 2));
  Heap->detachThread(Ctx);
}
BENCHMARK(BM_AllocateSmall);

void BM_AllocateSmallStwNoBarrier(benchmark::State &State) {
  auto Heap = GcHeap::create(microOptions(CollectorKind::StopTheWorld));
  MutatorContext &Ctx = Heap->attachThread();
  for (auto _ : State) {
    Object *Obj = Heap->allocate(Ctx, 32, 2);
    benchmark::DoNotOptimize(Obj);
  }
  Heap->detachThread(Ctx);
}
BENCHMARK(BM_AllocateSmallStwNoBarrier);

void BM_AllocateSmallFastPathSizeClasses(benchmark::State &State) {
  GcOptions Opts = microOptions(CollectorKind::MostlyConcurrent);
  Opts.FastPathSizeClasses = true;
  auto Heap = GcHeap::create(Opts);
  MutatorContext &Ctx = Heap->attachThread();
  for (auto _ : State) {
    Object *Obj = Heap->allocate(Ctx, 32, 2);
    benchmark::DoNotOptimize(Obj);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          Object::requiredSize(32, 2));
  Heap->detachThread(Ctx);
}
BENCHMARK(BM_AllocateSmallFastPathSizeClasses);

void BM_WriteBarrier(benchmark::State &State) {
  auto Heap = GcHeap::create(microOptions(CollectorKind::MostlyConcurrent));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(2);
  Object *Holder = Heap->allocate(Ctx, 0, 2);
  Object *Value = Heap->allocate(Ctx, 16, 0);
  Ctx.setRoot(0, Holder);
  Ctx.setRoot(1, Value);
  unsigned Slot = 0;
  for (auto _ : State) {
    Heap->writeRef(Ctx, Holder, Slot & 1, Value);
    ++Slot;
  }
  Heap->detachThread(Ctx);
}
BENCHMARK(BM_WriteBarrier);

void BM_RefLoad(benchmark::State &State) {
  auto Heap = GcHeap::create(microOptions(CollectorKind::MostlyConcurrent));
  MutatorContext &Ctx = Heap->attachThread();
  Ctx.reserveRoots(1);
  Object *Holder = Heap->allocate(Ctx, 0, 2);
  Heap->writeRef(Ctx, Holder, 0, Holder);
  Ctx.setRoot(0, Holder);
  for (auto _ : State)
    benchmark::DoNotOptimize(GcHeap::readRef(Holder, 0));
  Heap->detachThread(Ctx);
}
BENCHMARK(BM_RefLoad);

void BM_MarkBitTestAndSet(benchmark::State &State) {
  HeapSpace Heap(16u << 20);
  size_t NumGranules = Heap.sizeBytes() / GranuleBytes;
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Heap.markBits().testAndSet(Heap.base() + (I % NumGranules) * 8));
    ++I;
  }
}
BENCHMARK(BM_MarkBitTestAndSet);

void BM_PacketGetPut(benchmark::State &State) {
  PacketPool Pool(64);
  for (auto _ : State) {
    WorkPacket *Packet = Pool.getOutput();
    Pool.put(Packet);
  }
}
BENCHMARK(BM_PacketGetPut);

void BM_PacketPushPopEntry(benchmark::State &State) {
  PacketPool Pool(64);
  TraceContext Ctx(Pool);
  Object *Fake = reinterpret_cast<Object *>(0x10000);
  size_t N = 0;
  for (auto _ : State) {
    if ((N & 255) < 128) {
      benchmark::DoNotOptimize(Ctx.pushWork(Fake));
    } else {
      benchmark::DoNotOptimize(Ctx.popWork());
    }
    ++N;
  }
  while (Ctx.popWork())
    ;
  Ctx.release();
}
BENCHMARK(BM_PacketPushPopEntry);

void BM_CacheFlushPer64Objects(benchmark::State &State) {
  HeapSpace Heap(16u << 20);
  AllocationCache Cache;
  for (auto _ : State) {
    State.PauseTiming();
    Cache.reset();
    Cache.assignRange(Heap.base(), 64u << 10);
    for (int I = 0; I < 64; ++I)
      Cache.allocate(64, 1, 0);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Cache.flushAllocBits(Heap.allocBits()));
  }
}
BENCHMARK(BM_CacheFlushPer64Objects);

/// Manual allocation-cost measurement for the machine-readable output:
/// a fixed count of small allocations per flag setting, reporting
/// cycles per allocation and shard-lock acquisitions per allocation as
/// validated cgc-bench-v1 rows (google-benchmark's own numbers stay on
/// stdout for humans).
void emitAllocCostRows(BenchJsonWriter &Json) {
  const uint64_t NumAllocs = envKnobU64("CGC_BENCH_ALLOC_OPS", 400000);
  for (bool FastPath : {false, true}) {
    GcOptions Opts = microOptions(CollectorKind::StopTheWorld);
    Opts.HeapBytes = 32u << 20;
    Opts.FastPathSizeClasses = FastPath;
    auto Heap = GcHeap::create(Opts);
    MutatorContext &Ctx = Heap->attachThread();
    Ctx.reserveRoots(256);

    const uint64_t LockBefore =
        Heap->core().Heap.freeList().lockAcquisitions();
    const uint64_t C0 = costClock();
    for (uint64_t I = 0; I < NumAllocs; ++I) {
      Object *Obj = Heap->allocate(Ctx, 16 + (I % 16) * 56, 0);
      benchmark::DoNotOptimize(Obj);
      if (Obj && (I & 3) == 0) // Rolling survivor window: sweeps fragment.
        Ctx.setRoot((I >> 2) % 256, Obj);
    }
    const uint64_t Cost = costClock() - C0;
    const uint64_t Locks =
        Heap->core().Heap.freeList().lockAcquisitions() - LockBefore;
    Heap->detachThread(Ctx);

    Json.beginRow(std::string("alloc_small,fastpath=") +
                  (FastPath ? "1" : "0"));
    Json.addConfig("fastpath", FastPath ? 1 : 0);
    Json.addConfig("alloc_ops", static_cast<double>(NumAllocs));
    Json.addMetric("cycles_per_alloc",
                   static_cast<double>(Cost) /
                       static_cast<double>(NumAllocs),
                   costClockUnit());
    Json.addMetric("shard_lock_acquisitions_per_alloc",
                   static_cast<double>(Locks) /
                       static_cast<double>(NumAllocs),
                   "count");
    Json.addMetric("gc_cycles",
                   static_cast<double>(Heap->completedCycles()), "count");
  }
}

} // namespace

// Custom main instead of BENCHMARK_MAIN(): the google-benchmark suite
// runs exactly as before (all flags honored, argless run included),
// then the allocation-cost rows are emitted as a cgc-bench-v1 document.
// CI's observe job shortens the gbench half with --benchmark_filter.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  BenchJsonWriter Json("micro_ops");
  emitAllocCostRows(Json);
  emitBenchJson(Json);
  return 0;
}
