//===- fig1_specjbb_pauses.cpp - Figure 1 reproduction --------------------------//
///
/// Figure 1 of the paper: SPECjbb at 1..8 warehouses, tracing rate 8.0,
/// heap sized for ~60% occupancy at 8 warehouses. Series: STW max/avg
/// pause, CGC max/avg pause, CGC avg mark component. Expected shape: CGC
/// cuts both max and avg pause by a large factor (the paper: 284->101 ms
/// max, 266->66 ms avg at 8 warehouses) and the mark component shrinks
/// the most (235->34 ms avg).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Figure 1: SPECjbb-like pause times vs warehouses",
         "Fig. 1 (Section 6.1), 256 MB heap / 4-way PIII in the paper; "
         "scaled to a 48 MB heap here");

  constexpr size_t HeapBytes = 48u << 20;
  const uint64_t Millis = benchMillis(2000);
  constexpr unsigned MaxWarehouses = 8;
  const unsigned Sweep = benchMaxSeries(MaxWarehouses);

  TablePrinter Table({"warehouses", "STW max", "STW avg", "STW mark avg",
                      "CGC max", "CGC avg", "CGC mark avg", "STW tx/s",
                      "CGC tx/s"});
  BenchJsonWriter Json("fig1");

  for (unsigned W = 1; W <= Sweep; ++W) {
    GcOptions Stw;
    Stw.Kind = CollectorKind::StopTheWorld;
    Stw.HeapBytes = HeapBytes;
    // Live set grows with warehouses, reaching ~60% at 8 (as in the
    // paper, where the 256 MB heap hits 60% at 8 warehouses).
    WarehouseConfig Config = warehouseFor(Stw, W, Millis,
                                          0.6 * W / MaxWarehouses);
    RunOutcome StwRun = runWarehouse(Stw, Config);

    GcOptions Cgc = Stw;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.TracingRate = 8.0;
    // Host scaling: the paper runs 4 background threads on 4 CPUs.
    Cgc.BackgroundThreads = 1;
    RunOutcome CgcRun = runWarehouse(Cgc, Config);

    Table.addRow({TablePrinter::num(static_cast<uint64_t>(W)),
                  TablePrinter::num(StwRun.Agg.MaxPauseMs, 1),
                  TablePrinter::num(StwRun.Agg.AvgPauseMs, 1),
                  TablePrinter::num(StwRun.Agg.AvgMarkMs, 1),
                  TablePrinter::num(CgcRun.Agg.MaxPauseMs, 1),
                  TablePrinter::num(CgcRun.Agg.AvgPauseMs, 1),
                  TablePrinter::num(CgcRun.Agg.AvgMarkMs, 1),
                  TablePrinter::num(StwRun.Workload.throughput(), 0),
                  TablePrinter::num(CgcRun.Workload.throughput(), 0)});

    auto emitRow = [&](const char *Collector, const RunOutcome &Run) {
      Json.beginRow("warehouses=" + std::to_string(W) + ",collector=" +
                    Collector);
      Json.addConfig("warehouses", W);
      Json.addConfig("heap_mb", static_cast<double>(HeapBytes >> 20));
      Json.addConfig("duration_ms", static_cast<double>(Millis));
      Json.addConfig("concurrent", Collector[0] == 'c' ? 1 : 0);
      addCommonMetrics(Json, Run);
    };
    emitRow("stw", StwRun);
    emitRow("cgc", CgcRun);
  }
  Table.print();
  emitBenchJson(Json);
  std::printf("\nexpected shape: CGC max/avg pause well below STW at every "
              "warehouse count;\nthe CGC mark component shrinks the most "
              "(paper: -86%% avg mark at 8 warehouses).\n");
  return 0;
}
