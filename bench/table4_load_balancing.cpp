//===- table4_load_balancing.cpp - Table 4 reproduction ---------------------------//
///
/// Table 4 of the paper: the quality of work-packet load balancing as
/// the number of mutator threads grows. The paper runs pBOB on a 1.2 GB
/// heap with 1000 packets, 625..1000 threads, no idle time and no
/// background threads, and reports:
///  - average tracing factor (work done / work assigned per increment):
///    stable near 1 — no starvation;
///  - fairness (stddev of tracing factors): degrades gently until
///    2 x threads approaches the packet count, then plummets
///    (their 1000 packets vs 950-1000 threads);
///  - avg and max cost: synchronization (CAS) operations per get/put,
///    normalized by live memory — growing only moderately.
///
/// Scaled here: 512 packets and 64..448 threads, so the same
/// 2*threads ~ packets collapse point is crossed at ~256 threads.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Table 4: the quality of load balancing",
         "Table 4 (Section 6.3), pBOB without idle time, no background "
         "threads; 512 packets here vs the paper's 1000");

  constexpr size_t HeapBytes = 48u << 20;
  constexpr uint64_t Millis = 2000;

  TablePrinter Table({"Threads", "avg tracing factor", "fairness (stddev)",
                      "avg cost (syncs/live MB)", "max cost", "increments"});

  for (unsigned Threads : {64u, 128u, 192u, 256u, 320u, 448u}) {
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapBytes;
    Cgc.NumWorkPackets = 512;
    Cgc.BackgroundThreads = 0; // As in the paper's Table 4 runs.
    WarehouseConfig Config = warehouseFor(Cgc, Threads, Millis, 0.6);
    RunOutcome Run = runWarehouse(Cgc, Config);

    double FactorSum = 0, FairnessSum = 0, CostSum = 0, CostMax = 0;
    uint64_t Increments = 0;
    size_t Cycles = 0;
    for (const CycleRecord &R : Run.Cycles) {
      if (!R.Concurrent || R.TracingIncrements == 0)
        continue;
      ++Cycles;
      FactorSum += R.TracingFactorMean;
      FairnessSum += R.TracingFactorStddev;
      Increments += R.TracingIncrements;
      double LiveMb =
          static_cast<double>(R.LiveBytesAfter) / (1 << 20);
      double Cost = LiveMb > 0 ? static_cast<double>(R.SyncOps) / LiveMb : 0;
      CostSum += Cost;
      if (Cost > CostMax)
        CostMax = Cost;
    }
    if (Cycles == 0) {
      Table.addRow({TablePrinter::num(static_cast<uint64_t>(Threads)), "-",
                    "-", "-", "-", "0"});
      continue;
    }
    Table.addRow(
        {TablePrinter::num(static_cast<uint64_t>(Threads)),
         TablePrinter::num(FactorSum / Cycles, 3),
         TablePrinter::num(FairnessSum / Cycles, 3),
         TablePrinter::num(CostSum / Cycles, 0),
         TablePrinter::num(CostMax, 0), TablePrinter::num(Increments)});
  }
  Table.print();
  std::printf("\nexpected shape (paper): tracing factor stable (~0.95); "
              "fairness collapses once 2 x threads nears the packet count "
              "(every tracer holds at least two packets); cost rises only "
              "moderately with threads.\n");
  return 0;
}
