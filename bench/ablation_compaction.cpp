//===- ablation_compaction.cpp - Section 2.3's incremental compaction -------------//
///
/// Section 2.3: full compaction of a multi-gigabyte heap cannot fit in
/// a short pause, but one area per cycle can be evacuated inside the
/// pause that already exists, with pointers into the area tracked
/// during (concurrent and STW) marking. This ablation runs a
/// fragmentation-heavy workload with compaction off and on, reporting
/// the largest allocatable range (the defragmentation payoff) and the
/// pause cost of evacuation.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

namespace {

struct Row {
  double MaxPauseMs = 0, AvgPauseMs = 0, AvgCompactMs = 0;
  uint64_t Evacuated = 0, Pinned = 0, SlotsFixed = 0;
  double AvgLargestFreeRange = 0;
  double Throughput = 0;
};

Row run(bool CompactOn) {
  GcOptions Opts;
  Opts.Kind = CollectorKind::MostlyConcurrent;
  Opts.HeapBytes = 48u << 20;
  Opts.CompactEveryNCycles = CompactOn ? 1 : 0;
  Opts.EvacuationAreaBytes = 2u << 20;
  auto Heap = GcHeap::create(Opts);

  // Fragmentation-heavy: long-lived small objects interleaved with
  // churn, so free space shatters into small ranges.
  WarehouseConfig Config;
  Config.Threads = 4;
  Config.DurationMs = 3000;
  Config.OldMutationProbability = 0.4;
  Config.sizeLiveSet(static_cast<size_t>(0.55 * Opts.HeapBytes));

  WarehouseWorkload Workload(*Heap, Config);
  WorkloadResult Result = Workload.run();

  Row R;
  R.Throughput = Result.throughput();
  double CompactMsSum = 0, LargestSum = 0;
  size_t Cycles = 0;
  for (const CycleRecord &Rec : Heap->stats().snapshot()) {
    ++Cycles;
    R.Evacuated += Rec.EvacuatedObjects;
    R.Pinned += Rec.PinnedObjects;
    R.SlotsFixed += Rec.CompactionSlotsFixed;
    CompactMsSum += Rec.CompactionMs;
    LargestSum += static_cast<double>(Rec.LargestFreeRangeAfter);
    if (Rec.PauseMs > R.MaxPauseMs)
      R.MaxPauseMs = Rec.PauseMs;
    R.AvgPauseMs += Rec.PauseMs;
  }
  if (Cycles) {
    R.AvgPauseMs /= Cycles;
    R.AvgCompactMs = CompactMsSum / Cycles;
    R.AvgLargestFreeRange = LargestSum / Cycles;
  }
  return R;
}

} // namespace

int main() {
  banner("Incremental compaction ablation",
         "Section 2.3 (parallel incremental compaction, detailed in the "
         "companion ISMM'02 paper [6])");

  Row Off = run(false);
  Row On = run(true);

  TablePrinter Table({"compaction", "avg largest free range KB", "evacuated",
                      "pinned", "slots fixed", "avg compaction ms",
                      "avg pause ms", "max pause ms", "tx/s"});
  Table.addRow({"off",
                TablePrinter::num(Off.AvgLargestFreeRange / 1024.0, 0),
                "0", "0", "0", "0",
                TablePrinter::num(Off.AvgPauseMs, 2),
                TablePrinter::num(Off.MaxPauseMs, 2),
                TablePrinter::num(Off.Throughput, 0)});
  Table.addRow({"every cycle (2 MB area)",
                TablePrinter::num(On.AvgLargestFreeRange / 1024.0, 0),
                TablePrinter::num(On.Evacuated),
                TablePrinter::num(On.Pinned),
                TablePrinter::num(On.SlotsFixed),
                TablePrinter::num(On.AvgCompactMs, 2),
                TablePrinter::num(On.AvgPauseMs, 2),
                TablePrinter::num(On.MaxPauseMs, 2),
                TablePrinter::num(On.Throughput, 0)});
  Table.print();
  std::printf("\nexpected shape: compaction grows the largest allocatable "
              "range at a bounded per-pause cost (one area per cycle).\n");
  return 0;
}
