//===- ablation_load_balancer.cpp - Section 4.4's comparison ----------------------//
///
/// Section 4.4 compares work-packet management with the traditional
/// parallel-STW load balancers (private mark stacks + stealing, in the
/// style of Endo et al / Flood et al). The paper argues packets give
/// fast access with minimal synchronization and natural termination
/// detection (and its conclusion proposes using packets for parallel
/// STW collectors too). This ablation marks the same large object graph
/// with both mechanisms and reports wall time and synchronization
/// operations.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "gc/StealingMarker.h"
#include "gc/Tracer.h"
#include "gc/WorkerPool.h"
#include "support/Random.h"
#include "support/Timing.h"

using namespace cgc;
using namespace cgc::bench;

namespace {

/// Builds a random DAG of \p NumNodes objects directly in \p Heap.
std::vector<Object *> buildGraph(HeapSpace &Heap, size_t NumNodes,
                                 unsigned OutDegree, Random &Rng) {
  std::vector<Object *> Nodes;
  Nodes.reserve(NumNodes);
  size_t Bytes = Object::requiredSize(24, OutDegree);
  uint8_t *Cursor = Heap.base();
  for (size_t I = 0; I < NumNodes; ++I) {
    Object *Node = reinterpret_cast<Object *>(Cursor);
    Node->initialize(static_cast<uint32_t>(Bytes),
                     static_cast<uint16_t>(OutDegree), 0);
    Heap.allocBits().set(Node);
    Cursor += Bytes;
    Nodes.push_back(Node);
  }
  for (size_t I = 1; I < NumNodes; ++I)
    for (unsigned E = 0; E < OutDegree; ++E)
      Nodes[I]->storeRefRaw(E, Nodes[Rng.nextBelow(I)]);
  return Nodes;
}

} // namespace

int main() {
  banner("Work packets vs stealing mark stacks (parallel STW marking)",
         "Section 4.4 comparison; Section 7 proposes packets for "
         "parallel STW collection");

  constexpr size_t NumNodes = 400000;
  constexpr unsigned OutDegree = 3;
  constexpr unsigned RootFanout = 512;

  TablePrinter Table({"balancer", "workers", "mark ms", "sync ops",
                      "syncs/object"});

  for (unsigned Workers : {1u, 3u}) {
    // --- Work packets (the paper's mechanism) ---
    {
      HeapSpace Heap(64u << 20);
      Random Rng(42);
      std::vector<Object *> Nodes =
          buildGraph(Heap, NumNodes, OutDegree, Rng);
      PacketPool Pool(1000);
      ThreadRegistry Registry;
      Tracer Trace(Heap, Pool, Registry);
      WorkerPool Pool2(Workers);
      Trace.beginCycle();
      {
        TraceContext Seed(Pool);
        for (unsigned I = 0; I < RootFanout; ++I)
          Trace.markAndQueue(Seed,
                             Nodes[Nodes.size() - 1 - I % Nodes.size()]);
        Seed.release();
      }
      uint64_t SyncBefore = Pool.stats().SyncOps;
      Stopwatch Timer;
      Pool2.runParallel([&](unsigned) {
        TraceContext Ctx(Pool);
        for (;;) {
          if (Trace.traceWork(Ctx, 1u << 20, false, false) != 0)
            continue;
          Ctx.release();
          if (Pool.allPacketsEmptyAndIdle())
            return;
          std::this_thread::yield();
        }
      });
      double Ms = Timer.elapsedMillis();
      uint64_t Syncs = Pool.stats().SyncOps - SyncBefore;
      size_t Marked = Heap.markBits().countInRange(Heap.base(), Heap.limit());
      Table.addRow({"work packets",
                    TablePrinter::num(static_cast<uint64_t>(Workers + 1)),
                    TablePrinter::num(Ms, 1), TablePrinter::num(Syncs),
                    TablePrinter::num(
                        static_cast<double>(Syncs) /
                            static_cast<double>(Marked ? Marked : 1),
                        3)});
    }
    // --- Stealing mark stacks (the traditional mechanism) ---
    {
      HeapSpace Heap(64u << 20);
      Random Rng(42);
      std::vector<Object *> Nodes =
          buildGraph(Heap, NumNodes, OutDegree, Rng);
      WorkerPool Pool2(Workers);
      StealingMarker Marker(Heap, Pool2.numParticipants());
      for (unsigned I = 0; I < RootFanout; ++I)
        Marker.addRoot(Nodes[Nodes.size() - 1 - I % Nodes.size()]);
      Stopwatch Timer;
      Marker.markParallel(Pool2);
      double Ms = Timer.elapsedMillis();
      size_t Marked = Heap.markBits().countInRange(Heap.base(), Heap.limit());
      Table.addRow({"stealing stacks",
                    TablePrinter::num(static_cast<uint64_t>(Workers + 1)),
                    TablePrinter::num(Ms, 1),
                    TablePrinter::num(Marker.syncOps()),
                    TablePrinter::num(
                        static_cast<double>(Marker.syncOps()) /
                            static_cast<double>(Marked ? Marked : 1),
                        3)});
    }
  }
  Table.print();
  std::printf("\nexpected shape: comparable mark times; work packets keep "
              "synchronization per object low and need no separate "
              "termination protocol.\n");
  return 0;
}
