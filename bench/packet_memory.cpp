//===- packet_memory.cpp - Section 6.3's memory-watermark measurement -------------//
///
/// Section 6.3: the work-packet mechanism imposes a mostly breadth-first
/// traversal, so it may need more space than traditional mark stacks.
/// The paper instruments two high-level watermarks — packet slots in use
/// (a lower bound on needed memory) and packets in use (an upper bound)
/// — and finds the requirement bounded between 0.11% and 0.25% of heap
/// size, estimating 0.15% as realistic.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace cgc;
using namespace cgc::bench;

int main() {
  banner("Work packet memory requirements",
         "Section 6.3 text: watermarks bounded by 0.11%-0.25% of heap");

  TablePrinter Table({"heap MB", "slots watermark", "lower bound (slots)",
                      "packets watermark", "upper bound (packets)",
                      "packet count"});

  for (size_t HeapMb : {24u, 48u, 96u}) {
    GcOptions Cgc;
    Cgc.Kind = CollectorKind::MostlyConcurrent;
    Cgc.HeapBytes = HeapMb << 20;
    Cgc.NumWorkPackets = 1000;
    WarehouseConfig Config = warehouseFor(Cgc, 6, 2000, 0.6);
    RunOutcome Run = runWarehouse(Cgc, Config);

    // Lower bound: queued entries (8 bytes each). Upper bound: whole
    // packets in use.
    double LowerBytes =
        static_cast<double>(Run.Pool.SlotsInUseWatermark) * 8.0;
    double UpperBytes = static_cast<double>(Run.Pool.PacketsInUseWatermark) *
                        sizeof(WorkPacket);
    Table.addRow(
        {TablePrinter::num(static_cast<uint64_t>(HeapMb)),
         TablePrinter::num(Run.Pool.SlotsInUseWatermark),
         TablePrinter::percent(LowerBytes / Run.HeapBytes, 3),
         TablePrinter::num(Run.Pool.PacketsInUseWatermark),
         TablePrinter::percent(UpperBytes / Run.HeapBytes, 3),
         TablePrinter::num(static_cast<uint64_t>(1000))});
  }
  Table.print();
  std::printf("\nexpected shape (paper): both bounds a small fraction of "
              "the heap (0.11%%-0.25%%; ~0.15%% realistic).\n");
  return 0;
}
